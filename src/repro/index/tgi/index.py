"""The Temporal Graph Index — the paper's core contribution (Sec. 4).

``TGI`` composes the timespan builder, the version-chain store and the
partial-state query machinery into the full retrieval API:

- :meth:`get_snapshot` — Algorithm 1 (path of derived partitioned
  snapshots + trailing partitioned eventlists, fetched in parallel);
- :meth:`get_node_history` — Algorithm 2 (targeted micro-delta fetch for
  the state at ``ts``, version chain for the changes in ``(ts, te]``);
- :meth:`get_khop` — Algorithm 4 (expand outward from the node's
  micro-partition; with boundary replication a 1-hop fetch touches a
  single partition's rows — Fig. 5d);
- :meth:`get_khop_snapshot_first` — Algorithm 3 (fetch snapshot, filter);
- :meth:`get_khop_history` — Algorithm 5 (inherited; center history plus
  neighbor histories);
- :meth:`get_node_histories` — batched Algorithm 2 over a node population
  (one fetch round per dependency level instead of per node);
- :meth:`update` — batch append of new events as fresh timespans.

All retrieval goes through the fetch-plan execution layer
(:mod:`repro.exec`): methods declare *plans* — stages of role-tagged key
groups — and the shared :class:`~repro.exec.executor.PlanExecutor`
coalesces each stage into one ``multiget`` round, optionally short-
circuiting repeated rows through the index's
:class:`~repro.exec.cache.DeltaCache`.

With ``TGIConfig.checkpoint_entries`` set, the index additionally
memoizes *fully-replayed* states in a
:class:`~repro.exec.cache.StateCheckpointCache`: per-partition partial
states keyed ``(timespan, partition, time, aux)`` and whole snapshot
graphs keyed ``(timespan, time)``.  Warm queries seed their replay from
the nearest checkpoint (copy-on-read) instead of re-fetching and
re-applying the root deltas — GraphPool's overlap-sharing of materialized
states ("Efficient Snapshot Retrieval over Historical Graph Data"),
applied at micro-partition granularity.  Seeding is exact because the
build writes every event into the eventlist of *each* partition it
touches, so a partition's primary (or primary+aux) replay is
self-contained.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import replace as _dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.deltas.base import Delta, StaticNode
from repro.deltas.columnar import ColumnarEventList, decoded_events_total
from repro.deltas.eventlist import EventList
from repro.errors import IndexError_, PartitionUnavailable, TimeRangeError
from repro.exec import (
    DeltaCache,
    FetchPlan,
    FetchStage,
    KeyGroup,
    PlanExecutor,
    StateCheckpointCache,
)
from repro.graph.events import Event
from repro.graph.static import Graph
from repro.index.interface import HistoricalGraphIndex, NodeHistory
from repro.index.tgi.build import build_timespan
from repro.index.tgi.config import TGIConfig
from repro.index.tgi.layout import (
    DeltaKey,
    TAG_AUX_EVENTLIST,
    TAG_AUX_SNAPSHOT,
    TAG_EVENTLIST,
    TAG_SNAPSHOT,
    TimespanInfo,
    delta_key,
    sid_of_pid,
    version_chain_key,
)
from repro.index.tgi.query import PartialState, dedup_sorted
from repro.index.tgi.version_chain import VersionChainStore
from repro.kvstore.cluster import Cluster
from repro.kvstore.cost import CostModel, FetchStats
from repro.kvstore.degrade import active_partial, partition_label
from repro.obs.trace import current_span, use_span
from repro.partitioning.temporal import timespan_boundaries
from repro.stats.calibrate import calibrate_apply_costs
from repro.stats.model import (
    FRONTIER_MARGIN,
    GraphStatistics,
    expected_khop_pids,
    prefer_near_seed,
    prefer_snapshot_near_seed,
)
from repro.types import NodeId, TimePoint

#: Checkpoint payload for a replayed partition: (node states, edge attrs).
StatePayload = Tuple[Dict[NodeId, StaticNode], Dict[Tuple, dict]]


def _clone_state(payload: StatePayload) -> StatePayload:
    """Copy-on-read for partition-state checkpoints: node states are
    immutable (fresh :class:`StaticNode` per evolution), so a shallow dict
    copy suffices; edge-attribute dicts are mutated in place by
    ``EDGE_ATTR_SET`` replay, so each gets its own copy."""
    nodes, edges = payload
    return dict(nodes), {eid: dict(attrs) for eid, attrs in edges.items()}


def _state_key(
    tsid: int, pid: int, t: TimePoint, include_aux: bool
) -> Tuple:
    """Checkpoint key of one partition's fully-replayed state at ``t``."""
    return ("pids", tsid, pid, t, include_aux)


def _state_series(tsid: int, pid: int, include_aux: bool) -> Tuple:
    """Time-series id of one partition's states (all checkpointed ``t``
    values of the same ``(timespan, partition, aux)`` sort together, so
    the cache can answer nearest-in-time probes)."""
    return ("pids", tsid, pid, include_aux)


def _snapshot_ckpt_key(tsid: int, t: TimePoint) -> Tuple:
    """Checkpoint key of a whole materialized snapshot graph at ``t``."""
    return ("snapshot", tsid, t)


def _degraded_pids(keys, values) -> Set[int]:
    """Partitions whose rows a degraded fetch dropped from ``values``.

    A partition is never *partially* replayed — if any of its planned
    rows is missing, the whole partition is dropped (returned here) so a
    stale base is never patched with a subset of its events.  Inside an
    authorized partial scope the drops are recorded on the collector;
    without one this raises a typed :class:`PartitionUnavailable` (a
    degraded batchmate must not silently lose data)."""
    missing = [key for key in keys if key not in values]
    if not missing:
        return set()
    labels = sorted({partition_label(key) for key in missing})
    collector = active_partial()
    if collector is None:
        raise PartitionUnavailable(
            "rows unavailable for partitions: " + ", ".join(labels),
            partitions=labels,
            keys=tuple(missing),
        )
    for key in missing:
        collector.drop_key(key)
    return {key[3] for key in missing}


def _missing_chain(node) -> None:
    """A node's version-chain row was dropped by a degraded fetch:
    record it (inside a partial scope) or raise typed."""
    label = f"vc:{node}"
    collector = active_partial()
    if collector is None:
        raise PartitionUnavailable(
            f"version chain unavailable for node {node!r}",
            partitions=(label,),
        )
    collector.add_partition(label)


class TGI(HistoricalGraphIndex):
    """Temporal Graph Index over the simulated key-value cluster."""

    def __init__(self, config: Optional[TGIConfig] = None) -> None:
        super().__init__()
        self.config = config or TGIConfig()
        self.cluster = Cluster(self.config.cluster)
        self.delta_cache = (
            DeltaCache(
                self.config.delta_cache_entries,
                self.config.delta_cache_bytes,
            )
            if (
                self.config.delta_cache_entries > 0
                or self.config.delta_cache_bytes > 0
            )
            else None
        )
        self.checkpoints = (
            StateCheckpointCache(
                self.config.checkpoint_entries,
                admission=self.config.checkpoint_admission,
            )
            if self.config.checkpoint_entries > 0
            else None
        )
        self.executor = PlanExecutor(
            self.cluster,
            self.delta_cache,
            apply_workers=self.config.apply_workers,
            coalesce=self.config.coalesce,
        )
        self.stats = GraphStatistics()
        self._vc = VersionChainStore(self.cluster, self.config.placement_groups)
        self._spans: List[TimespanInfo] = []
        self._running = Graph()  # state at the end of indexed history
        self._t_min: Optional[TimePoint] = None
        self._t_max: Optional[TimePoint] = None
        self._apply_pool = None  # lazy ThreadPoolExecutor (apply_workers > 1)
        self._pool_lock = threading.Lock()
        #: Learned occupancy corrections for the k-hop frontier model,
        #: keyed by k: EWMA of observed/predicted touched-partition
        #: ratios, folded into ``expected_khop_pids``' margin (fixes the
        #: static margin's over-prediction on min-cut builds).
        self._frontier_corrections: Dict[int, float] = {}

    def _pool(self):
        """The shared per-partition apply pool (created on first use).
        Creation is locked: concurrent queries over one served index
        would otherwise both build a pool and orphan one of them."""
        pool = self._apply_pool
        if pool is None:
            with self._pool_lock:
                pool = self._apply_pool
                if pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    pool = ThreadPoolExecutor(
                        max_workers=self.config.apply_workers,
                        thread_name_prefix="tgi-apply",
                    )
                    self._apply_pool = pool
        return pool

    def __getstate__(self):
        # thread pools and locks don't pickle (save_index serializes
        # whole indexes); drop both — the pool is recreated lazily on
        # the next parallel replay
        state = dict(self.__dict__)
        state["_apply_pool"] = None
        state["_pool_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # learned frontier-occupancy corrections
    # ------------------------------------------------------------------
    #: EWMA smoothing for the frontier corrections (same constant the
    #: session uses for its per-algorithm cost corrections).
    FRONTIER_EWMA_ALPHA = 0.3
    #: Clip band for a correction: a few wild observations (tiny
    #: neighborhoods, dead centers) must not zero out or explode the
    #: margin for everyone.
    FRONTIER_SCALE_MIN = 0.25
    FRONTIER_SCALE_MAX = 4.0

    def frontier_margin_scale(self, k: int) -> float:
        """Learned multiplier on ``expected_khop_pids``' occupancy
        margin for hop count ``k`` (1.0 until observations arrive)."""
        return self._frontier_corrections.get(k, 1.0)

    @property
    def frontier_corrections(self) -> Dict[int, float]:
        """Copy of the learned per-k frontier margin scales (planner
        drift surface: ``/metrics`` and ``hgs inspect`` report these)."""
        return dict(self._frontier_corrections)

    def _observe_frontier(self, k: int, predicted: int, actual: int) -> None:
        """Fold one executed k-hop's touched-partition count back into
        the learned margin: the correction moves toward the ratio of
        actual to (already-corrected) predicted partitions, so repeated
        over-prediction — the static margin's documented behavior on
        min-cut builds — shrinks the margin toward what traversals
        really touch."""
        if predicted <= 0 or actual <= 0:
            return
        alpha = self.FRONTIER_EWMA_ALPHA
        current = self._frontier_corrections.get(k, 1.0)
        updated = current * ((1.0 - alpha) + alpha * (actual / predicted))
        self._frontier_corrections[k] = min(
            self.FRONTIER_SCALE_MAX, max(self.FRONTIER_SCALE_MIN, updated)
        )

    def _predicted_frontier_pids(
        self, span: TimespanInfo, centers: Sequence[NodeId], k: int
    ) -> int:
        """What the (corrected) frontier model currently predicts the
        traversal from ``centers`` will touch — 0 when the model does not
        apply (no statistics, or boundary replication changes the fetch
        shape).  Used purely as the reference for EWMA feedback."""
        if self.config.replicate_boundary:
            return 0
        span_stats = self.stats.span(span.tsid)
        if span_stats is None:
            return 0
        margin = FRONTIER_MARGIN * self.frontier_margin_scale(k)
        predicted: Set[int] = set()
        for center in centers:
            pid0 = span.pid_of(center)
            if pid0 is None:
                continue
            cand = {
                pid for pid in span_stats.reachable_pids(pid0, k)
                if pid < span.num_pids
            }
            est = expected_khop_pids(
                span_stats, pid0, k, cand, margin=margin
            )
            predicted |= set(est.pids)
        return len(predicted)

    # ------------------------------------------------------------------
    # construction + batch update
    # ------------------------------------------------------------------
    def build(self, events: Sequence[Event]) -> None:
        if self._spans:
            raise IndexError_("index already built; use update() to append")
        if not events:
            raise TimeRangeError("cannot build an index over an empty history")
        self._append_spans(events)
        self._t_min = events[0].time
        # measure the machine's actual decode/replay constants against
        # the rows this build just wrote (a few ms; persisted with the
        # index so apply-cost accounting predicts real Python-side cost)
        self.stats.calibration = calibrate_apply_costs(self.cluster)

    def update(self, events: Sequence[Event]) -> None:
        """Append a batch of new events (paper: updates are accepted in
        batches of timespan length and merged as new timespans)."""
        if not events:
            return
        if self._t_max is not None and events[0].time <= self._t_max:
            raise IndexError_(
                f"update events must come after t={self._t_max}"
            )
        self._append_spans(events)
        if self._t_min is None:
            self._t_min = events[0].time

    def _append_spans(self, events: Sequence[Event]) -> None:
        spans = timespan_boundaries(events, self.config.events_per_timespan)
        cursor = 0
        for (t_start, t_end) in spans:
            span_events = []
            while cursor < len(events) and events[cursor].time < t_end:
                span_events.append(events[cursor])
                cursor += 1
            info = build_timespan(
                len(self._spans),
                self._running,
                span_events,
                t_start,
                t_end,
                self.config,
                self.cluster,
                self._vc,
                stats=self.stats,
            )
            self._spans.append(info)
        changed_chains = self._vc.flush()
        self._t_max = events[-1].time
        if self.delta_cache is not None:
            # selective invalidation: timespan rows are append-only and
            # never change, and flush() reports exactly which version
            # chains gained pointers — drop those rows, keep the rest of
            # the working set warm across the batch update
            self.delta_cache.bump_generation()
            self.delta_cache.invalidate_many(changed_chains)
        # materialized-state checkpoints stay warm: timespans are
        # append-only, so a state replayed inside an existing span can
        # never be invalidated by new events (which land in new spans),
        # and checkpoints never include version-chain data

    # ------------------------------------------------------------------
    # span / time navigation
    # ------------------------------------------------------------------
    def _span_at(self, t: TimePoint) -> TimespanInfo:
        if not self._spans or self._t_max is None or self._t_min is None:
            raise TimeRangeError("index is empty")
        if t > self._t_max:
            raise TimeRangeError(f"time {t} beyond indexed history ({self._t_max})")
        if t < self._t_min:
            raise TimeRangeError(f"time {t} precedes indexed history ({self._t_min})")
        starts = [s.t_start for s in self._spans]
        pos = bisect.bisect_right(starts, t) - 1
        return self._spans[max(pos, 0)]

    @property
    def num_timespans(self) -> int:
        return len(self._spans)

    def session(self, **kwargs):
        """Open a :class:`~repro.session.GraphSession` facade over this
        index — the preferred query API (cost-based plan selection,
        shared caching, uniform stats).  Direct ``get_*`` calls remain
        supported as the internal layer."""
        from repro.session import GraphSession

        return GraphSession.from_index(self, **kwargs)

    def use_calibrated_apply(self) -> CostModel:
        """Switch the cluster's cost model to apply constants *measured*
        at build time (``stats.calibration``): actual decode ms/KiB and
        replay ms/item on the machine that built the index.  Falls back
        to the fixed defaults when no calibration exists (e.g. an index
        whose build predates statistics).  Returns the new model."""
        model = self.config.cluster.cost_model.with_apply(
            calibration=self.stats.calibration
        )
        cluster_cfg = _dc_replace(self.config.cluster, cost_model=model)
        self.config = _dc_replace(self.config, cluster=cluster_cfg)
        self.cluster.config = cluster_cfg
        return model

    # ------------------------------------------------------------------
    # snapshot retrieval (Algorithm 1)
    # ------------------------------------------------------------------
    def _snapshot_plan(
        self, span: TimespanInfo, t: TimePoint,
        pids: Optional[Set[int]] = None, include_aux: bool = False,
    ) -> Tuple[List[List[DeltaKey]], List[DeltaKey]]:
        """Keys for the root→leaf path (grouped per tree node, in path
        order) and for the trailing eventlists, optionally restricted to a
        pid subset and extended with auxiliary rows."""
        ns = self.config.placement_groups
        leaf = span.leaf_at(t)
        path_groups: List[List[DeltaKey]] = []
        for did in span.tree.path_to_leaf(leaf):
            group: List[DeltaKey] = []
            for pid in span.snapshot_pids.get(did, []):
                if pids is None or pid in pids:
                    group.append(
                        delta_key(span.tsid, sid_of_pid(pid, ns),
                                  TAG_SNAPSHOT, did, pid)
                    )
            if include_aux:
                for pid in span.aux_snapshot_pids.get(did, []):
                    if pids is None or pid in pids:
                        group.append(
                            delta_key(span.tsid, sid_of_pid(pid, ns),
                                      TAG_AUX_SNAPSHOT, did, pid)
                        )
            path_groups.append(group)
        ekeys: List[DeltaKey] = []
        for j in span.eventlists_between(leaf, t):
            for pid in span.eventlist_pids.get(j, []):
                if pids is None or pid in pids:
                    ekeys.append(
                        delta_key(span.tsid, sid_of_pid(pid, ns),
                                  TAG_EVENTLIST, j, pid)
                    )
            if include_aux:
                for pid in span.aux_eventlist_pids.get(j, []):
                    if pids is None or pid in pids:
                        ekeys.append(
                            delta_key(span.tsid, sid_of_pid(pid, ns),
                                      TAG_AUX_EVENTLIST, j, pid)
                        )
        return path_groups, ekeys

    def _snapshot_stage(
        self,
        span: TimespanInfo,
        t: TimePoint,
        label: str,
        pids: Optional[Set[int]] = None,
        include_aux: bool = False,
    ) -> Tuple[FetchStage, List[List[DeltaKey]], List[DeltaKey]]:
        """One plan stage holding a snapshot fetch (Algorithm 1's keys are
        all independent, so they form a single round).  Also returns the
        raw key structure for the apply side (path order matters)."""
        path_groups, ekeys = self._snapshot_plan(
            span, t, pids=pids, include_aux=include_aux
        )
        groups = [
            KeyGroup("micro-path", tuple(k for g in path_groups for k in g)),
            KeyGroup("eventlist", tuple(ekeys)),
        ]
        return FetchStage(label, tuple(groups)), path_groups, ekeys

    def get_snapshot(self, t: TimePoint, clients: int = 1) -> Graph:
        decoded0 = decoded_events_total()
        plan, finalize, ckpt = self._snapshot_exec_plan(t)
        result = self.executor.execute(plan, clients=clients)
        g = finalize(result.values)
        result.stats.checkpoint_hits += ckpt["hits"]
        result.stats.checkpoint_misses += ckpt["misses"]
        result.stats.checkpoint_near_hits += ckpt["near_hits"]
        result.stats.decoded_events += decoded_events_total() - decoded0
        self.last_fetch_stats = result.stats
        return g

    def _snapshot_exec_plan(
        self, t: TimePoint
    ) -> Tuple[
        FetchPlan,
        "Callable[[Dict[DeltaKey, object]], Graph]",
        Dict[str, int],
    ]:
        """Build one snapshot query's plan plus a finalizer mapping the
        executed values to the graph at ``t`` (same plan/finalize shape
        as :meth:`_khops_plan`, so batched sessions can compose snapshot
        queries with other plans in one pipelined execution).

        Three plan forms, cheapest first: an exact whole-graph checkpoint
        hit contributes an *empty* plan; a nearest-in-time checkpoint at
        ``t0 < t`` — when the event-rate histograms price the gap replay
        under a cold build — fetches only the global eventlist gap
        ``(t0, t]`` and replays it forward (``checkpoints.near_hits``);
        otherwise the full Algorithm-1 fetch runs cold."""
        span = self._span_at(t)
        ckpt = {"hits": 0, "misses": 0, "near_hits": 0}
        if self.checkpoints is not None:
            cached = self.checkpoints.lookup(_snapshot_ckpt_key(span.tsid, t))
            if cached is not None:
                ckpt["hits"] += 1
                return FetchPlan(f"snapshot(t={t})"), lambda values: cached, ckpt
            seed = self._capture_snapshot_near_seed(span, t)
            if seed is not None:
                g0, t0, gap_keys = seed
                ckpt["near_hits"] += 1
                plan = FetchPlan(f"snapshot(t={t})~seed(t0={t0})")
                plan.add_stage(
                    "snapshot-gap", KeyGroup("near-gap", tuple(gap_keys))
                )

                def finalize_near(values: Dict[DeltaKey, object]) -> Graph:
                    bad = _degraded_pids(gap_keys, values)
                    elists = [
                        values[key] for key in gap_keys if key[3] not in bad
                    ]
                    if all(isinstance(el, ColumnarEventList) for el in elists):
                        g0.apply_columnar(elists, until=t, after=t0)
                    else:
                        g0.apply_events(dedup_sorted(
                            ev for el in elists
                            for ev in el if t0 < ev.time <= t
                        ))
                    if not bad:
                        # a degraded snapshot must never seed later
                        # fault-free queries from the checkpoint cache
                        self._admit_snapshot(span, t, g0)
                    return g0

                return plan, finalize_near, ckpt
            ckpt["misses"] += 1
        plan = FetchPlan(f"snapshot(t={t})")
        stage, path_groups, ekeys = self._snapshot_stage(span, t, "snapshot")
        plan.stages.append(stage)

        def finalize_cold(values: Dict[DeltaKey, object]) -> Graph:
            bad = _degraded_pids(
                [key for group in path_groups for key in group]
                + list(ekeys),
                values,
            )
            acc = Delta()
            for group in path_groups:
                for key in group:
                    if key[3] in bad:
                        continue
                    acc = acc + values[key]
            g = acc.to_graph()
            elists = [values[key] for key in ekeys if key[3] not in bad]
            if all(isinstance(el, ColumnarEventList) for el in elists):
                # bulk replay off the packed columns (dedups replicated
                # copies by seq, bounds by time via bisection)
                g.apply_columnar(elists, until=t)
            else:
                g.apply_events(dedup_sorted(
                    ev for el in elists for ev in el if ev.time <= t
                ))
            if not bad:
                # a degraded snapshot must never seed later fault-free
                # queries from the checkpoint cache
                self._admit_snapshot(span, t, g)
            return g

        return plan, finalize_cold, ckpt

    def _admit_snapshot(self, span: TimespanInfo, t: TimePoint, g: Graph) -> None:
        """Checkpoint a materialized snapshot under its time series so
        later queries can reuse it exactly or seed from it nearest-in-
        time.  The cached graph is private (structural copy), as is every
        graph a later hit returns — callers may mutate theirs."""
        if self.checkpoints is not None:
            self.checkpoints.admit(
                _snapshot_ckpt_key(span.tsid, t),
                g.copy(),
                Graph.copy,
                series=("snapshot", span.tsid),
                t=t,
            )

    def _snapshot_gap_keys(
        self, span: TimespanInfo, t0: TimePoint, t: TimePoint
    ) -> List[DeltaKey]:
        """Eventlist keys carrying *any* partition's events in
        ``(t0, t]`` — the whole-graph replay gap between a materialized
        snapshot at ``t0`` and a query at ``t`` (the global analogue of
        :meth:`_gap_eventlist_keys`)."""
        ns = self.config.placement_groups
        keys: List[DeltaKey] = []
        for j, (ts_j, te_j) in enumerate(span.eventlist_ranges):
            if te_j <= t0:
                continue
            if ts_j >= t:
                break
            for pid in span.eventlist_pids.get(j, []):
                keys.append(
                    delta_key(span.tsid, sid_of_pid(pid, ns),
                              TAG_EVENTLIST, j, pid)
                )
        return keys

    def _snapshot_near_seed_candidate(
        self, span: TimespanInfo, t: TimePoint
    ) -> Optional[Tuple[TimePoint, List[DeltaKey]]]:
        """Whole-graph nearest-in-time seeding decision: the latest
        materialized snapshot of this timespan at some ``t0 < t``, if the
        event-rate histograms price its gap replay under the cold
        Algorithm-1 build.  Returns ``(t0, gap_keys)`` when seeding wins,
        else ``None``.  Non-perturbing (planner-safe): callers holding
        the decision fetch the payload via ``lookup``."""
        cp = self.checkpoints
        if cp is None:
            return None
        found = cp.nearest(("snapshot", span.tsid), t)
        if found is None:
            return None
        t0, _key0 = found
        if t0 >= t:
            # the exact-hit path handles t0 == t; never replay backward
            return None
        gap_keys = self._snapshot_gap_keys(span, t0, t)
        path_groups, ekeys = self._snapshot_plan(span, t)
        num_cold = sum(len(g) for g in path_groups) + len(ekeys)
        if not prefer_snapshot_near_seed(
            self.stats.span(span.tsid),
            t0,
            t,
            num_cold,
            len(gap_keys),
            self.config.cluster.cost_model,
            self.stats.calibration,
            leaf_time=span.checkpoints[span.leaf_at(t)],
        ):
            return None
        return t0, gap_keys

    def _capture_snapshot_near_seed(
        self, span: TimespanInfo, t: TimePoint
    ) -> Optional[Tuple[Graph, TimePoint, List[DeltaKey]]]:
        """Decide *and capture* a whole-graph near seed — the candidate
        decision plus the checkpointed graph itself (cloned now, so a
        later eviction cannot strand the caller).  Returns ``(private
        graph copy at t0, t0, gap keys)`` or ``None``."""
        seed = self._snapshot_near_seed_candidate(span, t)
        if seed is None:
            return None
        t0, gap_keys = seed
        g0 = self.checkpoints.lookup(_snapshot_ckpt_key(span.tsid, t0))
        if g0 is None:
            return None
        return g0, t0, gap_keys

    # ------------------------------------------------------------------
    # partial-state loading (shared by node / k-hop retrieval)
    # ------------------------------------------------------------------
    @staticmethod
    def _pid_scope(
        span: TimespanInfo, pids: Set[int], include_aux: bool
    ) -> Set[NodeId]:
        """Nodes covered by ``pids``: primary members, plus each
        partition's replicated boundary neighbors when auxiliaries are
        stored."""
        scope = {n for n, p in span.node_pid.items() if p in pids}
        if include_aux:
            for pid in pids:
                scope |= set(span.boundary.get(pid, frozenset()))
        return scope

    def _replay_pid_state(
        self,
        span: TimespanInfo,
        pid: int,
        t: TimePoint,
        include_aux: bool,
        values: Dict[DeltaKey, object],
        plan: Optional[Tuple[List[List[DeltaKey]], List[DeltaKey]]] = None,
    ) -> Optional[PartialState]:
        """Replay one partition's state at ``t`` from fetched rows (pure
        compute — no checkpoint admission, so it is safe on a worker
        thread).  ``plan`` takes the partition's already-computed
        ``(path_groups, ekeys)`` when the caller has them, avoiding a
        second tree-path walk.  Returns ``None`` when a degraded fetch
        dropped any of the partition's rows (the whole partition is
        unavailable — never a partial replay)."""
        path_groups, ekeys = plan if plan is not None else (
            self._snapshot_plan(span, t, pids={pid}, include_aux=include_aux)
        )
        all_keys = [key for group in path_groups for key in group] + list(ekeys)
        if _degraded_pids(all_keys, values):
            return None
        state = PartialState(
            scope=self._pid_scope(span, {pid}, include_aux)
        )
        for group in path_groups:
            for key in group:
                state.load_delta(values[key])
        state.apply_eventlists([values[key] for key in ekeys], until=t)
        return state

    def _admit_state(
        self,
        span: TimespanInfo,
        pid: int,
        t: TimePoint,
        include_aux: bool,
        state: PartialState,
    ) -> None:
        """Checkpoint one replayed partition state (no-op when
        checkpoints are off)."""
        if self.checkpoints is not None:
            # store a private copy: the caller's merged state shares the
            # replayed dicts and may keep evolving them
            self.checkpoints.admit(
                _state_key(span.tsid, pid, t, include_aux),
                _clone_state((state.nodes, state.edge_attrs)),
                _clone_state,
                series=_state_series(span.tsid, pid, include_aux),
                t=t,
            )

    def _replay_pid(
        self,
        span: TimespanInfo,
        pid: int,
        t: TimePoint,
        include_aux: bool,
        values: Dict[DeltaKey, object],
        plan: Optional[Tuple[List[List[DeltaKey]], List[DeltaKey]]] = None,
    ) -> PartialState:
        """Replay one partition's state at ``t`` from fetched rows and
        admit it as a materialized-state checkpoint."""
        state = self._replay_pid_state(span, pid, t, include_aux, values, plan)
        self._admit_state(span, pid, t, include_aux, state)
        return state

    def _replay_pids(
        self,
        span: TimespanInfo,
        cold: Set[int],
        near: Dict[int, Tuple[StatePayload, TimePoint, List[DeltaKey]]],
        t: TimePoint,
        include_aux: bool,
        values: Dict[DeltaKey, object],
        plans: Optional[
            Dict[int, Tuple[List[List[DeltaKey]], List[DeltaKey]]]
        ] = None,
    ) -> List[Tuple[int, PartialState]]:
        """Replay all cold and near-seeded partitions of one fetch round.

        With ``apply_workers > 1`` the per-partition replays run on the
        shared thread pool (they are independent: each builds a private
        ``PartialState`` from read-only fetched rows); states are then
        admitted and returned in the serial order — cold partitions
        sorted by pid, then near-seeded ones — so merge results and
        checkpoint contents are bit-identical to ``apply_workers=1``."""
        pids = sorted(cold) + sorted(near)
        if not pids:
            return []

        def replay(pid: int) -> Optional[PartialState]:
            entry = near.get(pid)
            if entry is not None:
                payload0, t0, gap_keys = entry
                return self._seed_state(
                    span, pid, t, include_aux, payload0, t0, gap_keys, values
                )
            plan = plans.get(pid) if plans is not None else None
            return self._replay_pid_state(
                span, pid, t, include_aux, values, plan
            )

        def compute(pid: int) -> Optional[PartialState]:
            parent = current_span()
            if parent is None:
                return replay(pid)
            # one child span per partition, current while it replays so
            # events_applied (and any nested work) attributes to it —
            # including on pool threads, which run in a copied context
            sub = parent.child("apply.partition", pid=pid, seeded=pid in near)
            try:
                with use_span(sub):
                    return replay(pid)
            finally:
                sub.end()

        if self.config.apply_workers > 1 and len(pids) > 1:
            # worker threads do not inherit this thread's contextvars, so
            # each task runs in a fresh copy of the caller's context —
            # the degraded-mode collector (and any cancel scope checked
            # downstream) stays visible on the pool
            import contextvars as _cv

            tasks = [(pid, _cv.copy_context()) for pid in pids]
            states = list(
                self._pool().map(lambda pc: pc[1].run(compute, pc[0]), tasks)
            )
        else:
            states = [compute(pid) for pid in pids]
        out: List[Tuple[int, PartialState]] = []
        for pid, state in zip(pids, states):
            if state is None:
                continue  # degraded: whole partition dropped
            self._admit_state(span, pid, t, include_aux, state)
            out.append((pid, state))
        return out

    # ------------------------------------------------------------------
    # nearest-in-time checkpoint seeding
    # ------------------------------------------------------------------
    def _gap_eventlist_keys(
        self,
        span: TimespanInfo,
        pid: int,
        t0: TimePoint,
        t: TimePoint,
        include_aux: bool,
    ) -> List[DeltaKey]:
        """Eventlist keys holding ``pid``'s events in ``(t0, t]`` — the
        replay gap between a checkpointed state at ``t0`` and a query at
        ``t``.  Eventlist ``j`` scopes ``(ts_j, te_j]``, so the gap needs
        every list with ``te_j > t0`` and ``ts_j < t``."""
        ns = self.config.placement_groups
        keys: List[DeltaKey] = []
        for j, (ts_j, te_j) in enumerate(span.eventlist_ranges):
            if te_j <= t0:
                continue
            if ts_j >= t:
                break
            if pid in span.eventlist_pids.get(j, []):
                keys.append(
                    delta_key(span.tsid, sid_of_pid(pid, ns),
                              TAG_EVENTLIST, j, pid)
                )
            if include_aux and pid in span.aux_eventlist_pids.get(j, []):
                keys.append(
                    delta_key(span.tsid, sid_of_pid(pid, ns),
                              TAG_AUX_EVENTLIST, j, pid)
                )
        return keys

    def _near_seed_candidate(
        self,
        span: TimespanInfo,
        pid: int,
        t: TimePoint,
        include_aux: bool,
    ) -> Optional[Tuple[TimePoint, List[DeltaKey]]]:
        """Nearest-in-time seeding decision for one cold partition.

        Probes the checkpoint cache for the latest state of ``(timespan,
        partition, aux)`` at some ``t0 < t`` and — using the build-time
        statistics (expected gap events from the event-rate histogram vs
        the full replay-from-root volume) — decides whether forward
        replay over the gap beats a cold fetch.  Returns ``(t0,
        gap_keys)`` when seeding wins, else ``None``.  Non-perturbing:
        callers holding the decision fetch the payload via ``lookup``.
        """
        cp = self.checkpoints
        if cp is None:
            return None
        found = cp.nearest(_state_series(span.tsid, pid, include_aux), t)
        if found is None:
            return None
        t0, _key = found
        if t0 >= t:
            # the exact-hit path handles t0 == t; never replay backward
            return None
        gap_keys = self._gap_eventlist_keys(span, pid, t0, t, include_aux)
        path_groups, ekeys = self._snapshot_plan(
            span, t, pids={pid}, include_aux=include_aux
        )
        num_cold = sum(len(g) for g in path_groups) + len(ekeys)
        if not prefer_near_seed(
            self.stats.span(span.tsid),
            pid,
            t0,
            t,
            num_cold,
            len(gap_keys),
            self.config.cluster.cost_model,
            self.stats.calibration,
            leaf_time=span.checkpoints[span.leaf_at(t)],
        ):
            return None
        return t0, gap_keys

    def _capture_near_seed(
        self,
        span: TimespanInfo,
        pid: int,
        t: TimePoint,
        include_aux: bool,
    ) -> Optional[Tuple[StatePayload, TimePoint, List[DeltaKey]]]:
        """Decide *and capture* a near seed for one exact-missed
        partition: the checkpointed payload at ``t0`` (cloned now, so a
        later eviction cannot strand the caller after the cold keys were
        dropped from the plan), the seed time, and the gap keys.
        ``None`` when seeding loses the pricing or the entry vanished."""
        seed = self._near_seed_candidate(span, pid, t, include_aux)
        if seed is None:
            return None
        payload0 = self.checkpoints.lookup(
            _state_key(span.tsid, pid, seed[0], include_aux)
        )
        if payload0 is None:
            return None
        return payload0, seed[0], seed[1]

    @staticmethod
    def _with_gap_group(
        stage: FetchStage,
        near: Dict[int, Tuple[StatePayload, TimePoint, List[DeltaKey]]],
    ) -> FetchStage:
        """Append the near seedings' deduplicated gap keys to a stage."""
        if not near:
            return stage
        gap_union: List[DeltaKey] = []
        gseen: Set[DeltaKey] = set()
        for _payload0, _t0, gap_keys in near.values():
            for key in gap_keys:
                if key not in gseen:
                    gseen.add(key)
                    gap_union.append(key)
        return FetchStage(
            stage.label,
            stage.groups + (KeyGroup("near-gap", tuple(gap_union)),),
        )

    def _seed_state(
        self,
        span: TimespanInfo,
        pid: int,
        t: TimePoint,
        include_aux: bool,
        payload: StatePayload,
        t0: TimePoint,
        gap_keys: Sequence[DeltaKey],
        values: Dict[DeltaKey, object],
    ) -> Optional[PartialState]:
        """Advance a checkpointed partition state from ``t0`` to ``t`` by
        replaying only the gap eventlists (pure compute — no checkpoint
        admission, so it is safe on a worker thread).
        Exact for the same reason cold per-partition replay is: the build
        writes every event into the eventlist of each partition it
        touches, so the gap rows carry everything that moved this
        partition between the two times.  Returns ``None`` when a
        degraded fetch dropped any gap row — a stale seed must not pose
        as the state at ``t``."""
        if _degraded_pids(gap_keys, values):
            return None
        nodes, edge_attrs = payload  # already a private copy (lookup clones)
        state = PartialState(scope=self._pid_scope(span, {pid}, include_aux))
        state.nodes = nodes
        state.edge_attrs = edge_attrs
        state.apply_eventlists(
            [values[key] for key in gap_keys], until=t, after=t0
        )
        return state

    def _replay_pid_from_seed(
        self,
        span: TimespanInfo,
        pid: int,
        t: TimePoint,
        include_aux: bool,
        payload: StatePayload,
        t0: TimePoint,
        gap_keys: Sequence[DeltaKey],
        values: Dict[DeltaKey, object],
    ) -> Optional[PartialState]:
        """:meth:`_seed_state` plus checkpoint admission of the result."""
        state = self._seed_state(
            span, pid, t, include_aux, payload, t0, gap_keys, values
        )
        if state is not None:
            self._admit_state(span, pid, t, include_aux, state)
        return state

    @staticmethod
    def _merge_state(
        target: PartialState, nodes: Dict[NodeId, StaticNode],
        edge_attrs: Dict[Tuple, dict],
    ) -> None:
        """Fold one partition's replayed state into a merged view (first
        load wins — boundary-replicated duplicates carry equal states)."""
        for n, s in nodes.items():
            target.nodes.setdefault(n, s)
        for e, a in edge_attrs.items():
            target.edge_attrs.setdefault(e, a)

    def _load_pids(
        self,
        span: TimespanInfo,
        pids: Set[int],
        t: TimePoint,
        include_aux: bool,
        clients: int,
    ) -> Tuple[PartialState, Set[NodeId], FetchStats]:
        """Reconstruct the states, at time ``t``, of all nodes covered by
        ``pids`` (members plus boundary when ``include_aux``).  Returns the
        partial state, the covered scope, and the fetch stats.

        With checkpoints enabled, warm partitions are seeded from their
        memoized states and only the cold ones are fetched and replayed
        (then admitted); replay is per partition, which is exact because
        each partition's eventlists carry every event touching it."""
        scope = self._pid_scope(span, pids, include_aux)
        if self.checkpoints is None:
            plan = FetchPlan(f"load_pids({sorted(pids)}, t={t})")
            stage, path_groups, ekeys = self._snapshot_stage(
                span, t, "partial-state", pids=pids, include_aux=include_aux
            )
            plan.stages.append(stage)
            result = self.executor.execute(plan, clients=clients)
            values, stats = result.values, result.stats
            bad = _degraded_pids(
                [key for group in path_groups for key in group]
                + list(ekeys),
                values,
            )
            state = PartialState(scope=scope)
            for group in path_groups:
                for key in group:
                    if key[3] in bad:
                        continue
                    state.load_delta(values[key])
            state.apply_eventlists(
                [values[key] for key in ekeys if key[3] not in bad], until=t
            )
            return state, scope, stats

        state = PartialState(scope=scope)
        hits = 0
        cold: Set[int] = set()
        # pid -> (state payload at t0, t0, gap eventlist keys)
        near: Dict[int, Tuple[StatePayload, TimePoint, List[DeltaKey]]] = {}
        for pid in sorted(pids):
            payload = self.checkpoints.lookup(
                _state_key(span.tsid, pid, t, include_aux)
            )
            if payload is not None:
                hits += 1
                self._merge_state(state, *payload)
                continue
            captured = self._capture_near_seed(span, pid, t, include_aux)
            if captured is not None:
                near[pid] = captured
            else:
                cold.add(pid)
        plan = FetchPlan(f"load_pids({sorted(cold)}, t={t})")
        stage, _path_groups, _ekeys = self._snapshot_stage(
            span, t, "partial-state", pids=cold, include_aux=include_aux
        )
        plan.stages.append(self._with_gap_group(stage, near))
        result = self.executor.execute(plan, clients=clients)
        for _pid, replayed in self._replay_pids(
            span, cold, near, t, include_aux, result.values
        ):
            self._merge_state(state, replayed.nodes, replayed.edge_attrs)
        stats = result.stats
        stats.checkpoint_hits += hits
        stats.checkpoint_misses += len(cold)
        stats.checkpoint_near_hits += len(near)
        return state, scope, stats

    # ------------------------------------------------------------------
    # node history (Algorithm 2)
    # ------------------------------------------------------------------
    def get_node_history(
        self, node: NodeId, ts: TimePoint, te: TimePoint, clients: int = 1
    ) -> NodeHistory:
        return self.get_node_histories([node], ts, te, clients=clients)[0]

    def get_node_histories(
        self,
        nodes: Sequence[NodeId],
        ts: TimePoint,
        te: TimePoint,
        clients: int = 1,
    ) -> List[NodeHistory]:
        """Batched Algorithm 2: histories of a whole node population in
        O(1) fetch rounds.

        One round fetches every needed micro-delta path, trailing
        eventlist and version-chain row (nodes sharing a micro-partition
        share rows, fetched once); a second round fetches the union of
        all chain-pointed eventlist rows.  Results are identical to a
        per-node :meth:`get_node_history` loop — only the fetch schedule
        differs (a handful of rounds instead of O(nodes)).
        """
        if not nodes:
            self.last_fetch_stats = FetchStats()
            return []
        decoded0 = decoded_events_total()
        plan, finalize, ckpt = self._node_histories_plan(nodes, ts, te)
        result = self.executor.execute(plan, clients=clients)
        out = finalize(result.values)
        result.stats.checkpoint_hits += ckpt["hits"]
        result.stats.checkpoint_misses += ckpt["misses"]
        result.stats.checkpoint_near_hits += ckpt["near_hits"]
        result.stats.decoded_events += decoded_events_total() - decoded0
        self.last_fetch_stats = result.stats
        return out

    def _node_histories_plan(
        self, nodes: Sequence[NodeId], ts: TimePoint, te: TimePoint
    ) -> Tuple[
        FetchPlan,
        "Callable[[Dict[DeltaKey, object]], List[NodeHistory]]",
        Dict[str, int],
    ]:
        """Build the batched Algorithm-2 plan for ``nodes`` plus a
        finalizer that maps the executed plan's values back to one
        :class:`NodeHistory` per input node (input order, duplicates
        preserved).  Splitting plan from finalizer lets callers compose
        several history levels — and other plans — into one pipelined
        execution.  The third element counts the checkpoint hits/misses
        the plan resolved at build time (warm partitions contribute no
        fetch keys — their initial states come from the memoized replay);
        callers fold it into their fetch stats."""
        span = self._span_at(ts)
        ns = self.config.placement_groups
        ckpt = {"hits": 0, "misses": 0, "near_hits": 0}

        # metadata-only planning: one micro plan per distinct partition;
        # checkpointed partitions seed their replayed state instead (the
        # payload is captured now — a later eviction must not strand us
        # after the fetch keys were already dropped from the plan); a
        # nearby earlier checkpoint seeds forward replay over the gap
        # eventlists when the statistics price that under a cold fetch
        node_pid: Dict[NodeId, Optional[int]] = {}
        pid_plans: Dict[int, Tuple[List[List[DeltaKey]], List[DeltaKey]]] = {}
        seeded: Dict[int, StatePayload] = {}
        seeded_near: Dict[
            int, Tuple[StatePayload, TimePoint, List[DeltaKey]]
        ] = {}
        chain_nodes: List[NodeId] = []
        for node in nodes:
            if node in node_pid:
                continue
            pid = span.pid_of(node)
            node_pid[node] = pid
            if (
                pid is not None
                and pid not in pid_plans
                and pid not in seeded
                and pid not in seeded_near
            ):
                payload = (
                    self.checkpoints.lookup(
                        _state_key(span.tsid, pid, ts, False)
                    )
                    if self.checkpoints is not None
                    else None
                )
                if payload is not None:
                    seeded[pid] = payload
                    ckpt["hits"] += 1
                else:
                    captured = (
                        self._capture_near_seed(span, pid, ts, False)
                        if self.checkpoints is not None
                        else None
                    )
                    if captured is not None:
                        seeded_near[pid] = captured
                        ckpt["near_hits"] += 1
                    else:
                        if self.checkpoints is not None:
                            ckpt["misses"] += 1
                        pid_plans[pid] = self._snapshot_plan(
                            span, ts, pids={pid}
                        )
            if self._vc.has_chain(node):
                chain_nodes.append(node)

        micro_keys: List[DeltaKey] = []
        ev_keys: List[DeltaKey] = []
        gap_keys_union: List[DeltaKey] = []
        seen: Set[DeltaKey] = set()
        for pid in sorted(pid_plans):
            path_groups, ekeys = pid_plans[pid]
            for group in path_groups:
                for key in group:
                    if key not in seen:
                        seen.add(key)
                        micro_keys.append(key)
            for key in ekeys:
                if key not in seen:
                    seen.add(key)
                    ev_keys.append(key)
        for pid in sorted(seeded_near):
            for key in seeded_near[pid][2]:
                if key not in seen:
                    seen.add(key)
                    gap_keys_union.append(key)
        chain_keys = [version_chain_key(n, ns) for n in chain_nodes]

        plan = FetchPlan(
            f"node_histories({len(node_pid)} nodes, ts={ts}, te={te})"
        )
        plan.add_stage(
            "micros+chains",
            KeyGroup("micro-path", tuple(micro_keys)),
            KeyGroup("eventlist", tuple(ev_keys)),
            KeyGroup("near-gap", tuple(gap_keys_union)),
            KeyGroup("version-chain", tuple(chain_keys)),
        )

        def pointer_stage(values: Dict[DeltaKey, object]) -> Optional[FetchStage]:
            pointer_keys: List[DeltaKey] = []
            pseen: Set[DeltaKey] = set()
            for n in chain_nodes:
                chain = values.get(version_chain_key(n, ns))
                if chain is None:
                    _missing_chain(n)
                    continue
                for key in self._vc.pointers_in_range(chain, ts, te):
                    if key not in pseen:
                        pseen.add(key)
                        pointer_keys.append(key)
            if not pointer_keys:
                return None
            return FetchStage(
                "version-pointers",
                (KeyGroup("pointer", tuple(pointer_keys)),),
            )

        plan.add_factory(pointer_stage)

        def finalize(values: Dict[DeltaKey, object]) -> List[NodeHistory]:
            # reconstruct initial states once per partition (scoped loads
            # are independent per node, so sharing the replay is exact)
            initial: Dict[NodeId, Optional[StaticNode]] = {}
            by_pid: Dict[int, List[NodeId]] = {}
            for node, pid in node_pid.items():
                if pid is not None:
                    by_pid.setdefault(pid, []).append(node)
            replayed: Dict[int, PartialState] = {}
            if self.checkpoints is not None:
                # replay whole partitions (not just the queried members,
                # so the admitted checkpoints serve any later query over
                # these partitions) — cold and near-seeded ones together,
                # on the apply pool when configured
                replayed = dict(self._replay_pids(
                    span,
                    {p for p in by_pid
                     if p not in seeded and p not in seeded_near},
                    {p: seeded_near[p] for p in by_pid if p in seeded_near},
                    ts, False, values, plans=pid_plans,
                ))
            for pid, members in by_pid.items():
                if pid in seeded:
                    nodes_map, _edges = seeded[pid]
                    for node in members:
                        initial[node] = nodes_map.get(node)
                    continue
                state = replayed.get(pid)
                if state is None:
                    # no checkpointing: scoped replay of just the members
                    path_groups, ekeys = pid_plans[pid]
                    pid_keys = [k for g in path_groups for k in g]
                    pid_keys.extend(ekeys)
                    if _degraded_pids(pid_keys, values):
                        # partition dropped by a degraded fetch: the
                        # members get no initial state for this window
                        for node in members:
                            initial[node] = None
                        continue
                    state = PartialState(scope=set(members))
                    for group in path_groups:
                        for key in group:
                            state.load_delta(values[key])
                    state.apply_eventlists(
                        [values[key] for key in ekeys], until=ts
                    )
                for node in members:
                    initial[node] = state.node_state(node)

            chains = {}
            for n in chain_nodes:
                chain = values.get(version_chain_key(n, ns))
                if chain is None:
                    _missing_chain(n)
                    continue
                chains[n] = chain
            histories: Dict[NodeId, NodeHistory] = {}
            for node in node_pid:
                changes: List[Event] = []
                if node in chains:
                    keys = self._vc.pointers_in_range(chains[node], ts, te)
                    bad = _degraded_pids(keys, values)
                    # filter_by_time bisects; filter_by_id materializes
                    # only the rows touching this node on columnar rows
                    changes = dedup_sorted(
                        ev
                        for key in keys
                        if key[3] not in bad
                        for ev in values[key]
                        .filter_by_time(ts, te).filter_by_id((node,))
                    )
                histories[node] = NodeHistory(
                    node, ts, te, initial.get(node), tuple(changes)
                )
            return [histories[node] for node in nodes]

        return plan, finalize, ckpt

    # ------------------------------------------------------------------
    # k-hop neighborhood (Algorithms 3 and 4)
    # ------------------------------------------------------------------
    def get_khop(
        self, node: NodeId, t: TimePoint, k: int = 1, clients: int = 1
    ) -> Graph:
        """Algorithm 4: start from the node's micro-partition and expand
        outward, loading further partitions only when the frontier leaves
        the already-covered scope."""
        span = self._span_at(t)
        include_aux = self.config.replicate_boundary
        decoded0 = decoded_events_total()
        pid0 = span.pid_of(node)
        if pid0 is None:
            # nothing was fetched for this query; reset the stats so a
            # caller folding them after the raise cannot double-count the
            # previous query's accounting
            self.last_fetch_stats = FetchStats()
            raise IndexError_(f"node {node} not alive at t={t}")

        total = FetchStats()
        merged = PartialState()
        covered: Set[NodeId] = set()
        loaded_pids: Set[int] = set()

        def load(pids: Set[int]) -> None:
            pids = pids - loaded_pids
            if not pids:
                return
            state, scope, stats = self._load_pids(
                span, pids, t, include_aux, clients
            )
            total.merge(stats)
            loaded_pids.update(pids)
            covered.update(scope)
            for n, s in state.nodes.items():
                merged.nodes.setdefault(n, s)
            for e, a in state.edge_attrs.items():
                merged.edge_attrs.setdefault(e, a)

        load({pid0})
        if merged.node_state(node) is None:
            total.decoded_events += decoded_events_total() - decoded0
            self.last_fetch_stats = total
            collector = active_partial()
            label = f"ts{span.tsid}:p{pid0}"
            if collector is not None and label in collector.partitions:
                # the center's own partition was dropped: that is an
                # availability failure, not a missing node
                raise PartitionUnavailable(
                    f"partition of node {node} unavailable at t={t}",
                    partitions=(label,),
                )
            raise IndexError_(f"node {node} not alive at t={t}")

        members: Set[NodeId] = {node}
        frontier: Set[NodeId] = {node}
        for _ in range(k):
            nxt: Set[NodeId] = set()
            for n in frontier:
                state = merged.node_state(n)
                if state is not None:
                    nxt |= state.E
            nxt -= members
            if not nxt:
                break
            missing = {n for n in nxt if n not in covered}
            needed = {span.pid_of(n) for n in missing}
            load({p for p in needed if p is not None})
            members |= {n for n in nxt if merged.node_state(n) is not None}
            frontier = {n for n in nxt if merged.node_state(n) is not None}
        total.decoded_events += decoded_events_total() - decoded0
        self.last_fetch_stats = total
        self._observe_frontier(
            k,
            self._predicted_frontier_pids(span, [node], k),
            len(loaded_pids),
        )
        return merged.to_graph(members)

    def get_khops(
        self,
        centers: Sequence[NodeId],
        t: TimePoint,
        k: int = 1,
        clients: int = 1,
    ) -> List[Optional[Graph]]:
        """Batched Algorithm 4 with a *shared frontier*.

        At every hop the micro-partitions needed by *any* center's
        frontier are deduplicated into one plan stage — one multiget
        round — so a whole population of k-hop queries costs at most
        ``k + 1`` rounds instead of O(centers · (k + 1)), and partitions
        shared between neighborhoods are fetched once.  Returns one graph
        per input center (input order, duplicates preserved); ``None``
        marks centers not alive at ``t``.  Each alive center's graph is
        identical to its individual :meth:`get_khop` result.
        """
        if not centers:
            self.last_fetch_stats = FetchStats()
            return []
        decoded0 = decoded_events_total()
        plan, finalize, ckpt = self._khops_plan(centers, t, k)
        result = self.executor.execute(plan, clients=clients)
        out = finalize(result.values)
        result.stats.checkpoint_hits += ckpt["hits"]
        result.stats.checkpoint_misses += ckpt["misses"]
        result.stats.checkpoint_near_hits += ckpt["near_hits"]
        result.stats.decoded_events += decoded_events_total() - decoded0
        self.last_fetch_stats = result.stats
        return out

    def _khops_plan(
        self, centers: Sequence[NodeId], t: TimePoint, k: int
    ) -> Tuple[
        FetchPlan,
        "Callable[[Dict[DeltaKey, object]], List[Optional[Graph]]]",
        Dict[str, int],
    ]:
        """Build the shared-frontier k-hop plan plus a finalizer mapping
        the executed values to one graph per input center.

        The plan has one static stage (the centers' own partitions) and
        ``k`` factory stages; factory ``h`` applies the rows hop ``h - 1``
        fetched, advances every center's frontier, and emits one stage
        with the union of the still-missing micro-partition keys across
        all centers.  Checkpointed partitions are seeded directly into the
        merged state and never reach the plan; the returned counter dict
        records those hits (and the cold misses) for the caller's stats."""
        span = self._span_at(t)
        include_aux = self.config.replicate_boundary
        order = list(dict.fromkeys(centers))
        alive0 = [c for c in order if span.pid_of(c) is not None]
        plan = FetchPlan(f"khops({len(order)} centers, t={t}, k={k})")
        ckpt = {"hits": 0, "misses": 0, "near_hits": 0}

        merged = PartialState()
        covered: Set[NodeId] = set()
        loaded: Set[int] = set()
        # partitions fetched but not yet folded into `merged`: the
        # stage's combined (path_groups, ekeys) — or (None, None) in
        # checkpoint mode, where settle replays per partition — plus the
        # fetched pid set, its covered scope, and the stage's
        # nearest-checkpoint seedings (pid -> payload at t0, t0, gap keys)
        pending: List[Tuple[
            Optional[List[List[DeltaKey]]], Optional[List[DeltaKey]],
            Set[int], Set[NodeId],
            Dict[int, Tuple[StatePayload, TimePoint, List[DeltaKey]]],
        ]] = []
        members: Dict[NodeId, Set[NodeId]] = {}
        frontier: Dict[NodeId, Set[NodeId]] = {}
        # per center, frontier candidates awaiting the alive-at-t filter
        candidates: Dict[NodeId, Set[NodeId]] = {}
        # partition labels a degraded fetch dropped during expansion.
        # Factory stages settle mid-execution — under a *batch* window
        # scope for coalesced execution — so by finalize time the drop
        # already happened silently; the plan must carry it forward so
        # finalize can fail strict requests typed (a k-hop with a lost
        # frontier partition would otherwise return a smaller graph
        # with no error) and charge allow_partial ones
        dropped: Set[str] = set()
        started = [False]
        hop = [0]

        def stage_for(pids: Set[int]) -> Optional[FetchStage]:
            pids = pids - loaded
            if not pids:
                return None
            near: Dict[
                int, Tuple[StatePayload, TimePoint, List[DeltaKey]]
            ] = {}
            if self.checkpoints is not None:
                cold: Set[int] = set()
                for pid in sorted(pids):
                    payload = self.checkpoints.lookup(
                        _state_key(span.tsid, pid, t, include_aux)
                    )
                    if payload is not None:
                        # seed the memoized state now; covered/merged are
                        # ready before the next frontier advance
                        ckpt["hits"] += 1
                        loaded.add(pid)
                        covered.update(
                            self._pid_scope(span, {pid}, include_aux)
                        )
                        self._merge_state(merged, *payload)
                        continue
                    captured = self._capture_near_seed(
                        span, pid, t, include_aux
                    )
                    if captured is not None:
                        ckpt["near_hits"] += 1
                        near[pid] = captured
                    else:
                        cold.add(pid)
                        ckpt["misses"] += 1
                pids = cold
                if not pids and not near:
                    return None
            stage, path_groups, ekeys = self._snapshot_stage(
                span, t, f"khop-frontier-{hop[0]}", pids=pids,
                include_aux=include_aux,
            )
            stage = self._with_gap_group(stage, near)
            loaded.update(pids)
            loaded.update(near)
            if self.checkpoints is not None:
                path_groups, ekeys = None, None
            pending.append(
                (path_groups, ekeys, set(pids),
                 self._pid_scope(span, set(pids) | set(near), include_aux),
                 near)
            )
            return stage

        def settle(values: Dict[DeltaKey, object]) -> None:
            """Fold fetched rows into the merged state, then resolve which
            of the last hop's candidates are alive at ``t``."""
            while pending:
                path_groups, ekeys, pids, scope, near = pending.pop(0)
                if path_groups is None:
                    # checkpoint mode: per-partition replay (on the apply
                    # pool when configured), so each cold partition's
                    # state is admitted as a checkpoint and near-seeded
                    # partitions advance from their earlier checkpoint
                    # over just the gap eventlists
                    replayed = self._replay_pids(
                        span, pids, near, t, include_aux, values
                    )
                    for _pid, state in replayed:
                        self._merge_state(
                            merged, state.nodes, state.edge_attrs
                        )
                    survivors = {pid for pid, _state in replayed}
                    for pid in (pids | set(near)) - survivors:
                        dropped.add(f"ts{span.tsid}:p{pid}")
                    covered.update(scope)
                    continue
                stage_keys = [k for g in path_groups for k in g]
                stage_keys.extend(ekeys)
                bad = _degraded_pids(stage_keys, values)
                for pid in bad:
                    dropped.add(f"ts{span.tsid}:p{pid}")
                state = PartialState(scope=scope)
                for group in path_groups:
                    for key in group:
                        if key[3] in bad:
                            continue
                        state.load_delta(values[key])
                state.apply_eventlists(
                    [values[key] for key in ekeys if key[3] not in bad],
                    until=t,
                )
                covered.update(scope)
                self._merge_state(merged, state.nodes, state.edge_attrs)
            if not started[0]:
                started[0] = True
                for c in alive0:
                    if merged.node_state(c) is not None:
                        members[c] = {c}
                        frontier[c] = {c}
            else:
                for c, cand in candidates.items():
                    alive = {
                        n for n in cand
                        if merged.node_state(n) is not None
                    }
                    members[c] |= alive
                    frontier[c] = alive
                candidates.clear()

        def advance(values: Dict[DeltaKey, object]) -> Optional[FetchStage]:
            settle(values)
            hop[0] += 1
            needed: Set[NodeId] = set()
            for c, front in frontier.items():
                cand: Set[NodeId] = set()
                for n in front:
                    state = merged.node_state(n)
                    if state is not None:
                        cand |= state.E
                cand -= members[c]
                candidates[c] = cand
                needed |= {n for n in cand if n not in covered}
            pids = {span.pid_of(n) for n in needed}
            pids.discard(None)
            return stage_for(pids)

        init = stage_for({span.pid_of(c) for c in alive0})
        if init is not None:
            plan.stages.append(init)
        for _ in range(k):
            plan.add_factory(advance)

        predicted = self._predicted_frontier_pids(span, alive0, k)

        def finalize(
            values: Dict[DeltaKey, object],
        ) -> List[Optional[Graph]]:
            settle(values)
            self._observe_frontier(k, predicted, len(loaded))
            if dropped:
                labels = sorted(dropped)
                collector = active_partial()
                if collector is None:
                    raise PartitionUnavailable(
                        "k-hop expansion lost partitions: "
                        + ", ".join(labels),
                        partitions=labels,
                    )
                for label in labels:
                    collector.add_partition(label)
            graphs = {
                c: merged.to_graph(members[c]) for c in members
            }
            return [graphs.get(c) for c in centers]

        return plan, finalize, ckpt

    def get_khop_snapshot_first(
        self, node: NodeId, t: TimePoint, k: int = 1, clients: int = 1
    ) -> Graph:
        """Algorithm 3: fetch the whole snapshot, then filter to k hops."""
        return super().get_khop(node, t, k=k, clients=clients)
