"""Physical layout of TGI rows in the key-value cluster (paper Sec. 4.4).

Every row is keyed by the composite **delta key** ``(tsid, sid, did, pid)``:

- ``tsid`` — timespan id (``-1`` is reserved for version-chain rows);
- ``sid``  — horizontal placement group; the *placement key* ``(tsid, sid)``
  determines the storage machine, so one big fetch spreads over the cluster;
- ``did``  — delta id, a ``(tag, index)`` pair:
  ``("S", n)`` tree (derived snapshot) delta ``n``,
  ``("A", n)`` its auxiliary (boundary-replica) counterpart,
  ``("E", j)`` eventlist ``j``,
  ``("F", j)`` auxiliary eventlist ``j``,
  ``("V", node)`` a version chain row;
- ``pid``  — micro-partition id within the delta.

Rows are clustered (sorted within a machine) by the full key, so all
micro-partitions of one delta are contiguous and a snapshot fetch scans
them at the discounted continuation cost (Sec. 4.4 item 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.index.delta_tree import DeltaTree
from repro.partitioning.random_part import hash_partition
from repro.types import NodeId, TimePoint

DeltaKey = Tuple[int, int, Tuple[str, int], int]

#: Reserved tsid for version-chain rows.
VC_TSID = -1

#: Delta-id tags.
TAG_SNAPSHOT = "S"
TAG_AUX_SNAPSHOT = "A"
TAG_EVENTLIST = "E"
TAG_AUX_EVENTLIST = "F"
TAG_VERSION_CHAIN = "V"


def sid_of_pid(pid: int, placement_groups: int) -> int:
    """Placement group of a micro-partition: micro-deltas (not nodes) are
    what gets spread over placement groups, so locality-close nodes that
    share a pid also share a placement."""
    return hash_partition(pid, placement_groups, salt=17)


def delta_key(tsid: int, sid: int, tag: str, index: int, pid: int) -> DeltaKey:
    return (tsid, sid, (tag, index), pid)


def version_chain_key(node: NodeId, placement_groups: int) -> DeltaKey:
    sid = hash_partition(node, placement_groups, salt=29)
    return (VC_TSID, sid, (TAG_VERSION_CHAIN, node), 0)


@dataclass
class TimespanInfo:
    """Client-side metadata for one timespan (the paper's ``Timespans`` and
    ``Micropartitions`` tables; small enough to cache at the query manager).

    Attributes:
        tsid: timespan id.
        t_start / t_end: half-open time range ``[t_start, t_end)``.
        checkpoints: checkpoint (tree-leaf) times; ``checkpoints[0]`` is the
            state *before* the span's first event.
        eventlist_ranges: ``(ts, te]`` scope per eventlist.
        tree: shape of the temporal-compression tree over the checkpoints.
        num_pids: number of micro-partitions in this span.
        node_pid: micro-partition of every node alive during the span.
        snapshot_pids: pids with a stored (non-empty) micro, per tree did.
        aux_snapshot_pids: same for auxiliary micros.
        eventlist_pids: pids with a stored micro, per eventlist index.
        aux_eventlist_pids: same for auxiliary eventlists.
        boundary: per pid, the replicated out-of-partition neighbor ids
            (empty when replication is off).
    """

    tsid: int
    t_start: TimePoint
    t_end: TimePoint
    checkpoints: List[TimePoint]
    eventlist_ranges: List[Tuple[TimePoint, TimePoint]]
    tree: DeltaTree
    num_pids: int
    node_pid: Dict[NodeId, int]
    snapshot_pids: Dict[int, List[int]] = field(default_factory=dict)
    aux_snapshot_pids: Dict[int, List[int]] = field(default_factory=dict)
    eventlist_pids: Dict[int, List[int]] = field(default_factory=dict)
    aux_eventlist_pids: Dict[int, List[int]] = field(default_factory=dict)
    boundary: Dict[int, FrozenSet[NodeId]] = field(default_factory=dict)

    def pid_of(self, node: NodeId) -> Optional[int]:
        return self.node_pid.get(node)

    def leaf_at(self, t: TimePoint) -> int:
        """Largest checkpoint index with ``checkpoints[i] <= t``."""
        import bisect

        pos = bisect.bisect_right(self.checkpoints, t) - 1
        return max(pos, 0)

    def eventlists_between(self, cp_index: int, t: TimePoint) -> List[int]:
        """Eventlist indices needed to move from checkpoint ``cp_index``
        forward to time ``t`` (those whose scope starts before ``t``)."""
        out = []
        for j in range(cp_index, len(self.eventlist_ranges)):
            ts, _te = self.eventlist_ranges[j]
            if ts < t:
                out.append(j)
            else:
                break
        return out

    def scope_of(self, pid: int) -> Set[NodeId]:
        """Primary members plus replicated boundary of a partition."""
        members = {n for n, p in self.node_pid.items() if p == pid}
        return members | set(self.boundary.get(pid, frozenset()))
