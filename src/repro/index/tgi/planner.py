"""Query planning and EXPLAIN for TGI retrievals.

The paper's Query Manager "translates instructions into an optimal
retrieval plan" before touching the store (Sec. 5.2, Data Fetch).  This
module makes those plans first-class and inspectable: given a query, it
produces the exact delta keys that would be fetched, grouped by purpose
(tree path, eventlists, version chains, auxiliaries), with a cost estimate
from the cluster's cost model — without reading any data.

Useful for regression-testing access paths (the benchmarks assert on
fetched-delta counts) and for understanding why a query is cheap or
expensive, exactly like a relational EXPLAIN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import IndexError_
from repro.index.tgi.index import _snapshot_ckpt_key, _state_key
from repro.index.tgi.layout import DeltaKey, version_chain_key
from repro.kvstore.cost import simulate_plan
from repro.stats.model import FRONTIER_MARGIN, expected_khop_pids
from repro.types import NodeId, TimePoint


@dataclass(frozen=True)
class PlanStep:
    """One group of keys fetched for one purpose.

    ``chained`` marks a step whose keys depend on data from the preceding
    steps (e.g. version-pointed eventlists resolved from the chain row),
    so the executor must issue it as a separate, later multiget round;
    unchained steps all coalesce into the first round.
    """

    purpose: str
    keys: Tuple[DeltaKey, ...]
    chained: bool = False

    @property
    def num_keys(self) -> int:
        return len(self.keys)


@dataclass
class QueryPlan:
    """An inspectable retrieval plan.

    ``notes`` carries planner remarks that are not key groups — e.g. how
    many partitions a warm :class:`~repro.exec.cache.StateCheckpointCache`
    seeds without fetching.

    ``expected_keys``, when set, is the *expected-cost* key set derived
    from the build-time statistics (the frontier-growth model of
    :func:`repro.stats.model.expected_khop_pids`): a subset of the sound
    bound in ``steps`` that pricing and cost-based selection use.  The
    steps stay the safe superset — what the fetch may read in the worst
    case — while ``expected_keys`` is what it is *expected* to read."""

    query: str
    steps: List[PlanStep] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    expected_keys: Optional[Tuple[DeltaKey, ...]] = None

    @property
    def num_keys(self) -> int:
        return sum(step.num_keys for step in self.steps)

    def all_keys(self) -> List[DeltaKey]:
        return [k for step in self.steps for k in step.keys]

    def pricing_keys(self) -> List[DeltaKey]:
        """Keys cost estimation should price: the statistics-backed
        expected set when one exists, else the full (sound) bound."""
        if self.expected_keys is not None:
            return list(self.expected_keys)
        return self.all_keys()

    def placements(self) -> Set[Tuple]:
        """Distinct placement keys the plan touches (parallelism bound)."""
        return {k[:2] for k in self.all_keys()}

    def explain(self) -> str:
        """Human-readable plan summary."""
        lines = [f"QueryPlan[{self.query}]  "
                 f"({self.num_keys} deltas, {len(self.placements())} placements)"]
        for step in self.steps:
            lines.append(f"  - {step.purpose}: {step.num_keys} deltas")
            preview = ", ".join(repr(k) for k in step.keys[:3])
            if step.keys:
                suffix = ", ..." if step.num_keys > 3 else ""
                lines.append(f"      {preview}{suffix}")
        if self.expected_keys is not None:
            lines.append(
                f"  expected: {len(self.expected_keys)} of "
                f"{self.num_keys} deltas (stats frontier bound; "
                f"pricing uses the expected set)"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def price_plan(cluster, plan: Union[QueryPlan, Sequence[DeltaKey]],
               clients: int = 1,
               shared_keys: Optional[Set[DeltaKey]] = None) -> float:
    """Cost-model estimate (sim-ms) of fetching a plan's keys in one
    sequential round, without reading any data.

    This is the store-side half of an EXPLAIN — ``Cluster.plan_records``
    routes and prices every key exactly as ``multiget`` would, and
    :func:`~repro.kvstore.cost.simulate_plan` applies the two-sided
    client/server bound.  Plans whose chained steps force extra rounds are
    priced slightly low (round boundaries don't change total service
    time, only add latency), which is fine for *comparing* candidates.

    When the cost model prices client-side apply work, the estimate also
    charges each key's decode-plus-replay time (replay volume proxied
    from the raw payload size, since nothing has been decoded yet), so
    candidate comparison sees the same apply costs execution will report.

    Plans carrying a statistics-backed expected key set are priced on
    that set (the expected cost), not the sound worst-case bound — see
    :attr:`QueryPlan.expected_keys`.

    ``shared_keys`` is the batched-execution shared-context discount:
    keys an already-chosen concurrent plan will fetch anyway are priced
    at zero, because coalesced execution fetches them exactly once — so
    ``auto`` selection can anticipate the dedup when choosing per-request
    algorithms for a multi-center batch.
    """
    keys = plan.pricing_keys() if isinstance(plan, QueryPlan) else list(plan)
    if shared_keys:
        keys = [key for key in keys if key not in shared_keys]
    records = cluster.plan_records(keys, clients=clients)
    model = cluster.config.cost_model
    estimate = simulate_plan(records, model)
    if model.costs_apply:
        estimate += sum(
            model.estimated_apply_time(r.raw_bytes) for r in records
        )
    return estimate


class TGIPlanner:
    """Builds :class:`QueryPlan` objects against a built :class:`TGI`."""

    def __init__(self, tgi) -> None:
        self.tgi = tgi

    # ------------------------------------------------------------------
    def _warm_pids(
        self, span, pids: Set[int], t: TimePoint, include_aux: bool
    ) -> Set[int]:
        """Partitions whose replayed state at ``t`` is checkpointed (a
        non-perturbing probe — pricing must not touch hit counters)."""
        cp = self.tgi.checkpoints
        if cp is None:
            return set()
        return {
            pid for pid in pids
            if cp.peek(_state_key(span.tsid, pid, t, include_aux))
        }

    def _near_pids(
        self, span, pids: Set[int], t: TimePoint, include_aux: bool
    ) -> Dict[int, List[DeltaKey]]:
        """Partitions the fetch would near-seed from an earlier
        checkpoint, mapped to the gap eventlist keys it would read
        instead of the full replay-from-root key set.  Uses the exact
        runtime decision helper (non-perturbing), so plans match what
        execution does."""
        if self.tgi.checkpoints is None:
            return {}
        out: Dict[int, List[DeltaKey]] = {}
        for pid in sorted(pids):
            seed = self.tgi._near_seed_candidate(span, pid, t, include_aux)
            if seed is not None:
                out[pid] = seed[1]
        return out

    def plan_snapshot(self, t: TimePoint) -> QueryPlan:
        """Plan Algorithm 1 (GetSnapshot).

        A warm materialized-snapshot checkpoint answers the query without
        any fetch, so the plan prices (near) zero — which is exactly what
        cost-based selection should see for the warm path."""
        span = self.tgi._span_at(t)
        plan = QueryPlan(query=f"snapshot(t={t})")
        cp = self.tgi.checkpoints
        if cp is not None and cp.peek(_snapshot_ckpt_key(span.tsid, t)):
            plan.notes.append(
                "materialized snapshot checkpoint is warm: no fetch"
            )
            return plan
        seed = self.tgi._snapshot_near_seed_candidate(span, t)
        if seed is not None:
            t0, gap_keys = seed
            plan.steps.append(
                PlanStep("snapshot near-gap eventlists", tuple(gap_keys))
            )
            plan.notes.append(
                f"snapshot near-seeded from materialized checkpoint at "
                f"t0={t0}: gap replay ({t0}, {t}] only"
            )
            return plan
        path_groups, ekeys = self.tgi._snapshot_plan(span, t)
        path_keys = tuple(k for group in path_groups for k in group)
        plan.steps.append(PlanStep("derived-snapshot path", path_keys))
        plan.steps.append(PlanStep("trailing eventlists", tuple(ekeys)))
        return plan

    def plan_node_history(
        self, node: NodeId, ts: TimePoint, te: TimePoint
    ) -> QueryPlan:
        """Plan Algorithm 2 (GetNodeHistory): targeted micros for the
        state at ``ts`` plus version-chain-resolved eventlist rows."""
        span = self.tgi._span_at(ts)
        plan = QueryPlan(query=f"node_history(node={node}, ts={ts}, te={te})")
        pid = span.pid_of(node)
        if pid is not None:
            near = self._near_pids(span, {pid}, ts, False)
            if self._warm_pids(span, {pid}, ts, False):
                plan.notes.append(
                    "initial state checkpoint-seeded (1 partition)"
                )
            elif near:
                plan.steps.append(
                    PlanStep("near-gap eventlists", tuple(near[pid]))
                )
                plan.notes.append(
                    "initial state near-seeded from an earlier "
                    "checkpoint (gap replay only)"
                )
            else:
                path_groups, ekeys = self.tgi._snapshot_plan(
                    span, ts, pids={pid}
                )
                plan.steps.append(
                    PlanStep(
                        "targeted micro path",
                        tuple(k for group in path_groups for k in group),
                    )
                )
                plan.steps.append(PlanStep("initial-state eventlists",
                                           tuple(ekeys)))
        if node in self.tgi._vc._flushed:
            plan.steps.append(
                PlanStep(
                    "version chain",
                    (version_chain_key(node,
                                       self.tgi.config.placement_groups),),
                )
            )
            chain = self.tgi._vc._pending.get(node, [])
            keys = self.tgi._vc.pointers_in_range(tuple(chain), ts, te)
            plan.steps.append(PlanStep("version-pointed eventlists",
                                       tuple(keys), chained=True))
        return plan

    def plan_node_histories(
        self, nodes: Sequence[NodeId], ts: TimePoint, te: TimePoint
    ) -> QueryPlan:
        """Plan the batched Algorithm 2
        (:meth:`~repro.index.tgi.index.TGI.get_node_histories`): the
        deduplicated union of every node's plan — nodes sharing a
        micro-partition or chain row contribute its keys once, which is
        exactly what the batched fetch reads."""
        plan = QueryPlan(
            query=f"node_histories({len(nodes)} nodes, ts={ts}, te={te})"
        )
        merged: Dict[Tuple[str, bool], List[DeltaKey]] = {}
        order: List[Tuple[str, bool]] = []
        seen: Set[DeltaKey] = set()
        for node in dict.fromkeys(nodes):
            sub = self.plan_node_history(node, ts, te)
            for step in sub.steps:
                bucket_id = (step.purpose, step.chained)
                if bucket_id not in merged:
                    merged[bucket_id] = []
                    order.append(bucket_id)
                bucket = merged[bucket_id]
                for key in step.keys:
                    if key not in seen:
                        seen.add(key)
                        bucket.append(key)
        for purpose, chained in order:
            plan.steps.append(
                PlanStep(purpose, tuple(merged[(purpose, chained)]),
                         chained=chained)
            )
        if self.tgi.checkpoints is not None and nodes:
            span = self.tgi._span_at(ts)
            pids = {
                span.pid_of(n) for n in dict.fromkeys(nodes)
            } - {None}
            warm = self._warm_pids(span, pids, ts, False)
            if warm:
                plan.notes.append(
                    f"initial states checkpoint-seeded "
                    f"({len(warm)} partitions)"
                )
        return plan

    def plan_khop(self, node: NodeId, t: TimePoint, k: int = 1) -> QueryPlan:
        """Plan Algorithm 4 (targeted k-hop).

        Planning a k-hop requires knowing the neighbors, which requires
        data; the planner uses the span's *collapsed* adjacency (the
        micro-partition map plus boundary metadata) to bound the partitions
        that could be touched, which is exactly the superset the fetch may
        read.

        Without boundary replication the node-level adjacency is not in
        the metadata, but the build-time statistics are: the sound bound
        becomes the partitions within ``k`` levels of the start partition
        in the boundary-cut adjacency graph, and on top of it the
        frontier-growth model picks an *expected* partition set
        (:attr:`QueryPlan.expected_keys`) that pricing uses — a real
        expected-cost estimate instead of the whole-span fallback.
        """
        span = self.tgi._span_at(t)
        pid0 = span.pid_of(node)
        if pid0 is None:
            raise IndexError_(f"node {node} unknown in timespan {span.tsid}")
        include_aux = self.tgi.config.replicate_boundary
        plan = QueryPlan(query=f"khop(node={node}, t={t}, k={k})")
        span_stats = self.tgi.stats.span(span.tsid)

        # bound the partitions that could be touched using metadata only
        pids: Set[int] = {pid0}
        expected_pids: Optional[Set[int]] = None
        if include_aux:
            # with replication, hop h's neighbors live in the auxiliaries of
            # hop h-1's partitions; further pids come from boundary metadata
            frontier_pids = {pid0}
            for _ in range(max(0, k - 1)):
                nxt: Set[int] = set()
                for pid in frontier_pids:
                    for n in span.boundary.get(pid, frozenset()):
                        p = span.pid_of(n)
                        if p is not None:
                            nxt.add(p)
                nxt -= pids
                if not nxt:
                    break
                pids |= nxt
                frontier_pids = nxt
        elif span_stats is not None:
            # sound bound: partitions within k cut-adjacency levels; the
            # frontier-growth model then selects the expected subset
            pids = {
                pid for pid in span_stats.reachable_pids(pid0, k)
                if pid < span.num_pids
            }
            scale = self.tgi.frontier_margin_scale(k)
            est = expected_khop_pids(
                span_stats, pid0, k, pids,
                margin=FRONTIER_MARGIN * scale,
            )
            expected_pids = set(est.pids)
            note = (
                f"stats bound: expected {len(est.pids)}/{len(pids)} "
                f"partitions (frontier model reaches "
                f"~{est.reached_nodes:.0f} nodes)"
            )
            if scale != 1.0:
                note += f"; learned margin x{scale:.2f}"
            plan.notes.append(note)
        else:
            # no statistics (pre-stats index object): the only safe bound
            # is every partition present in the span — the actual fetch
            # loads lazily and typically touches far fewer
            pids = set(range(span.num_pids))
        warm = self._warm_pids(span, pids, t, include_aux)
        if warm:
            pids = pids - warm
            if expected_pids is not None:
                expected_pids -= warm
            plan.notes.append(
                f"{len(warm)} partitions checkpoint-seeded"
            )
        near = self._near_pids(span, pids, t, include_aux)
        if near:
            pids = pids - set(near)
            plan.notes.append(
                f"{len(near)} partitions near-seeded from earlier "
                f"checkpoints (gap replay only)"
            )
        path_groups, ekeys = self.tgi._snapshot_plan(
            span, t, pids=pids, include_aux=include_aux
        )
        plan.steps.append(
            PlanStep(
                "partition micro paths",
                tuple(k_ for group in path_groups for k_ in group),
            )
        )
        plan.steps.append(PlanStep("partition eventlists", tuple(ekeys)))
        if near:
            gap_keys = tuple(
                key for pid in sorted(near) for key in near[pid]
            )
            plan.steps.append(PlanStep("near-gap eventlists", gap_keys))
        if expected_pids is not None:
            exp_groups, exp_ekeys = self.tgi._snapshot_plan(
                span, t, pids=expected_pids - set(near),
                include_aux=include_aux,
            )
            expected: List[DeltaKey] = [
                key for group in exp_groups for key in group
            ]
            expected.extend(exp_ekeys)
            for pid in sorted(set(near) & expected_pids):
                expected.extend(near[pid])
            plan.expected_keys = tuple(expected)
        return plan

    def plan_khops(
        self, centers: Sequence[NodeId], t: TimePoint, k: int = 1
    ) -> QueryPlan:
        """Plan the shared-frontier batched k-hop
        (:meth:`~repro.index.tgi.index.TGI.get_khops`).

        The bound is the deduplicated union of every alive center's
        Algorithm-4 bound: partitions shared between neighborhoods appear
        once, which is exactly the saving the shared frontier realizes at
        fetch time.  Centers unknown in the timespan contribute nothing;
        if *no* center is alive the plan is empty rather than an error
        (``get_khops`` returns ``None`` per dead center).
        """
        plan = QueryPlan(
            query=f"khops({len(centers)} centers, t={t}, k={k})"
        )
        merged: Dict[str, List[DeltaKey]] = {}
        seen: Set[DeltaKey] = set()
        expected_union: List[DeltaKey] = []
        expected_seen: Set[DeltaKey] = set()
        all_expected = True
        any_sub = False
        for center in dict.fromkeys(centers):
            try:
                sub = self.plan_khop(center, t, k=k)
            except IndexError_:
                continue
            any_sub = True
            for step in sub.steps:
                bucket = merged.setdefault(step.purpose, [])
                for key in step.keys:
                    if key not in seen:
                        seen.add(key)
                        bucket.append(key)
            if sub.expected_keys is None:
                all_expected = False
            else:
                for key in sub.expected_keys:
                    if key not in expected_seen:
                        expected_seen.add(key)
                        expected_union.append(key)
            for note in sub.notes:
                if note not in plan.notes:
                    plan.notes.append(note)
        for purpose, keys in merged.items():
            plan.steps.append(PlanStep(purpose, tuple(keys)))
        if any_sub and all_expected:
            # shared frontier: the expected fetch is the deduplicated
            # union of every center's expected key set
            plan.expected_keys = tuple(expected_union)
        return plan
