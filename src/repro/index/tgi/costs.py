"""Analytic access-cost model — the formulas of the paper's Table 1.

For each index and each retrieval primitive, the table reports two
metrics: ``Σ|∆|`` (sum of fetched delta cardinalities) and ``Σ1`` (number
of deltas fetched).  These estimates are compared against measured counts
in ``benchmarks/bench_table1_costs.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

#: (sum of delta cardinalities, number of deltas)
Cost = Tuple[float, float]


@dataclass(frozen=True)
class WorkloadShape:
    """Quantities Table 1 is parameterized by.

    Attributes:
        G: total number of changes in the graph (``|G|``).
        S: size of a snapshot (``|S|``).
        E: eventlist size (``|E|``).
        V: number of changes to the queried node (``|V|``).
        R: number of neighbors of the queried node (``|R|``).
        p: number of (micro-)partitions in TGI.
        h: height of the DeltaGraph/TGI tree.
    """

    G: float
    S: float
    E: float
    V: float
    R: float
    p: float
    h: float


PRIMITIVES = (
    "snapshot",
    "static_vertex",
    "vertex_versions",
    "one_hop",
    "one_hop_versions",
)

INDEXES = ("log", "copy", "copy+log", "node-centric", "deltagraph", "tgi")


def table1(shape: WorkloadShape) -> Dict[str, Dict[str, Cost]]:
    """Return the full analytic Table 1 for the given workload shape.

    Each entry maps primitive → (Σ|∆|, Σ1).  Storage size estimates are in
    :func:`storage_sizes`.
    """
    G, S, E, V, R, p, h = (
        shape.G, shape.S, shape.E, shape.V, shape.R, shape.p, shape.h,
    )
    num_lists = max(G / E, 1.0)
    C = V  # changes to a node over full history
    return {
        "log": {
            "snapshot": (G, num_lists),
            "static_vertex": (G, num_lists),
            "vertex_versions": (G, num_lists),
            "one_hop": (G, num_lists),
            "one_hop_versions": (G, num_lists),
        },
        "copy": {
            "snapshot": (S, 1),
            "static_vertex": (S, 1),
            "vertex_versions": (S * G, G),
            "one_hop": (S, 1),
            "one_hop_versions": (S * G, G),
        },
        "copy+log": {
            "snapshot": (S + E, 2),
            "static_vertex": (S + E, 2),
            "vertex_versions": (G, num_lists),
            "one_hop": (S + E, 2),
            "one_hop_versions": (G, num_lists),
        },
        "node-centric": {
            "snapshot": (2 * G, max(G / max(C, 1), 1)),
            "static_vertex": (C, 1),
            "vertex_versions": (C, 1),
            "one_hop": (R * V, R),
            "one_hop_versions": (R * V, R),
        },
        "deltagraph": {
            "snapshot": (h * S + E, 2 * h),
            "static_vertex": (h * S + E, 2 * h),
            "vertex_versions": (G, num_lists),
            "one_hop": (h * (S + E), 2 * h),
            "one_hop_versions": (G, num_lists),
        },
        "tgi": {
            "snapshot": (h * S + E, 2 * h * p),
            "static_vertex": (h * S / p + E / p, 2 * h),
            "vertex_versions": (V * (1 + S / p), V + 1),
            "one_hop": (h * (S + E) / p, 2 * h),
            "one_hop_versions": (V * (1 + S / p), V + 1),
        },
    }


def storage_sizes(shape: WorkloadShape) -> Dict[str, float]:
    """First column of Table 1: total storage footprint per index."""
    G, S, E, h = shape.G, shape.S, shape.E, shape.h
    return {
        "log": G,
        "copy": G * G,
        "copy+log": G * G / max(E, 1),
        "node-centric": 2 * G,
        "deltagraph": G * (h + 1),
        "tgi": G * (2 * h + 3),
    }


def tree_height(num_leaves: int, arity: int) -> int:
    """Height of a k-ary delta tree over ``num_leaves`` leaves."""
    if num_leaves <= 1:
        return 0
    return math.ceil(math.log(num_leaves, arity))
