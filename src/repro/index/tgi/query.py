"""Query-side machinery for TGI: partial state reconstruction.

A TGI fetch returns micro-deltas (checkpoint state for some scope of
nodes) plus partitioned eventlists (changes since the checkpoint).
:class:`PartialState` assembles these into per-node static states at the
query time without materializing the full graph — the property that makes
node- and neighborhood-centric retrieval cheap (Table 1's TGI row).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.deltas.base import Delta, StaticEdge, StaticNode
from repro.deltas.columnar import _NO_OTHER, ColumnarEventList, merged_order
from repro.graph.events import Event, EventKind
from repro.graph.static import Graph
from repro.index.interface import evolve_node_state
from repro.obs.trace import current_span
from repro.types import AttrMap, EdgeId, NodeId, TimePoint, canonical_edge

# EventKind values as plain ints: the columnar kinds column stores the
# raw uint8, so the bulk kernel dispatches without Enum lookups.
_K_NODE_ADD = int(EventKind.NODE_ADD)
_K_NODE_DELETE = int(EventKind.NODE_DELETE)
_K_EDGE_ADD = int(EventKind.EDGE_ADD)
_K_EDGE_DELETE = int(EventKind.EDGE_DELETE)
_K_NODE_ATTR_SET = int(EventKind.NODE_ATTR_SET)
_K_NODE_ATTR_DEL = int(EventKind.NODE_ATTR_DEL)
_K_EDGE_ATTR_SET = int(EventKind.EDGE_ATTR_SET)
_K_EDGE_ATTR_DEL = int(EventKind.EDGE_ATTR_DEL)

#: Accumulator-miss sentinel (``None`` is a real value: node not alive).
_MISSING: Any = object()


class PartialState:
    """Mutable view of the states of a *scope* of nodes at one time point.

    Load checkpoint deltas in root→leaf order (later loads override), then
    apply events in chronological order; each operation is restricted to
    the scope, so partitions can be reconstructed independently.
    """

    def __init__(self, scope: Optional[Set[NodeId]] = None) -> None:
        self.scope = scope  # None = unrestricted
        self._nodes: Dict[NodeId, StaticNode] = {}
        self._applier: Optional["_ColumnarApplier"] = None
        self.edge_attrs: Dict[EdgeId, AttrMap] = {}

    @property
    def nodes(self) -> Dict[NodeId, StaticNode]:
        """Per-node states; freezes any pending columnar accumulators
        first, so reads always see fully-applied events."""
        applier = self._applier
        if applier is not None:
            self._applier = None
            applier.finish()
        return self._nodes

    @nodes.setter
    def nodes(self, value: Dict[NodeId, StaticNode]) -> None:
        # wholesale replacement (checkpoint seeding): any pending
        # accumulators described the dict being replaced
        self._applier = None
        self._nodes = value

    def _in_scope(self, node: NodeId) -> bool:
        return self.scope is None or node in self.scope

    # -- loading checkpoint deltas ----------------------------------------
    def load_delta(self, delta: Delta) -> None:
        trace = current_span()
        if trace is not None:
            trace.inc("deltas_loaded", 1)
        for comp in delta:
            if isinstance(comp, StaticNode):
                if self._in_scope(comp.I):
                    self.nodes[comp.I] = comp
            else:
                if self._in_scope(comp.u) or self._in_scope(comp.v):
                    self.edge_attrs[(comp.u, comp.v)] = comp.attrs

    # -- applying events ----------------------------------------------------
    def apply_event(self, ev: Event) -> None:
        for node in set(ev.entities):
            if not self._in_scope(node):
                continue
            nxt = evolve_node_state(self.nodes.get(node), ev, node)
            if nxt is None:
                self.nodes.pop(node, None)
            else:
                self.nodes[node] = nxt
        if ev.other is None:
            return
        eid = canonical_edge(ev.node, ev.other)
        if not (self._in_scope(eid[0]) or self._in_scope(eid[1])):
            return
        if ev.kind == EventKind.EDGE_ADD:
            if isinstance(ev.value, dict) and ev.value:
                self.edge_attrs[eid] = dict(ev.value)
            else:
                self.edge_attrs.pop(eid, None)
        elif ev.kind == EventKind.EDGE_DELETE:
            self.edge_attrs.pop(eid, None)
        elif ev.kind == EventKind.EDGE_ATTR_SET:
            assert ev.key is not None
            self.edge_attrs.setdefault(eid, {})[ev.key] = ev.value
        elif ev.kind == EventKind.EDGE_ATTR_DEL:
            attrs = self.edge_attrs.get(eid)
            if attrs is not None:
                attrs.pop(ev.key, None)
                if not attrs:
                    self.edge_attrs.pop(eid, None)

    def apply_events(self, events: Iterable[Event]) -> None:
        for ev in events:
            self.apply_event(ev)

    def apply_eventlists(
        self,
        lists: Sequence[Any],
        until: Optional[TimePoint] = None,
        after: Optional[TimePoint] = None,
    ) -> None:
        """Bulk-replay several eventlists in global ``(time, seq)`` order,
        restricted to ``after < time <= until``, deduplicating replicated
        copies (edge events are stored with both endpoints' partitions).

        All-columnar input replays straight off the packed columns —
        per-kind dispatch on raw ints, mutable node accumulators, one
        immutable :class:`StaticNode` per touched node — without
        materializing a single :class:`Event`.  The accumulators persist
        across calls (a partition's chain arrives as several small
        lists) and freeze lazily on the first read of :attr:`nodes`, so
        the per-node thaw/freeze cost is paid once per replayed state,
        not once per list.  Any non-columnar list falls back to the
        classic materialize + ``dedup_sorted`` + :meth:`apply_events`
        path; both produce identical states.
        """
        lists = [el for el in lists if el is not None and len(el)]
        if not lists:
            return
        trace = current_span()
        if all(isinstance(el, ColumnarEventList) for el in lists):
            windows, order = merged_order(lists, until=until, after=after)
            applier = self._applier
            if applier is None:
                self._applier = applier = _ColumnarApplier(self)
            if order is None:
                for li, el in enumerate(lists):
                    lo, hi = windows[li]
                    if hi > lo:
                        applier.apply_range(el, lo, hi)
            else:
                applier.apply_order(lists, order)
            if trace is not None:
                trace.inc(
                    "events_applied",
                    len(order) if order is not None
                    else sum(hi - lo for lo, hi in windows),
                )
            return
        evs: List[Event] = []
        for el in lists:
            for ev in el.events:
                if (after is None or ev.time > after) and (
                    until is None or ev.time <= until
                ):
                    evs.append(ev)
        if trace is not None:
            trace.inc("events_applied", len(evs))
        self.apply_events(dedup_sorted(evs))

    # -- reading out ---------------------------------------------------------
    def node_state(self, node: NodeId) -> Optional[StaticNode]:
        return self.nodes.get(node)

    def to_graph(self, members: Iterable[NodeId], directed: bool = False) -> Graph:
        """Induced graph on ``members`` using the reconstructed states."""
        keep = {n for n in members if n in self.nodes}
        g = Graph(directed=directed)
        for n in keep:
            g.add_node(n, self.nodes[n].attrs)
        for n in keep:
            for nbr in self.nodes[n].E:
                if nbr in keep and not g.has_edge(n, nbr):
                    eid = canonical_edge(n, nbr)
                    g.add_edge(n, nbr, self.edge_attrs.get(eid))
        return g


class _ColumnarApplier:
    """Bulk replay kernel over columnar eventlist rows.

    Folds the same transition function as :func:`evolve_node_state` /
    :meth:`PartialState.apply_event`, but accumulates each touched node
    mutably (``[attrs dict, neighbor set]``, ``None`` = not alive) and
    converts back to an immutable :class:`StaticNode` once in
    :meth:`finish` — the attrs are sorted and the neighbors frozen
    exactly as ``StaticNode.make`` does, so the result is structurally
    identical to the per-event immutable chain.  The owning
    :class:`PartialState` keeps the applier alive between
    ``apply_eventlists`` calls and finishes it lazily when its ``nodes``
    are first read.
    """

    __slots__ = ("_ps", "_scope", "_work")

    def __init__(self, ps: PartialState) -> None:
        self._ps = ps
        self._scope = ps.scope
        self._work: Dict[NodeId, Optional[List[Any]]] = {}

    def _seed(self, node: NodeId) -> Optional[List[Any]]:
        """First touch of a node: thaw its current StaticNode (if any)."""
        st = self._ps._nodes.get(node)
        cur = None if st is None else [dict(st.A), set(st.E)]
        self._work[node] = cur
        return cur

    def _row(
        self, kind: int, node: Any, other: Any, entry: Optional[Tuple]
    ) -> None:
        key, value, _old = entry if entry is not None else (None, None, None)
        scope = self._scope
        work = self._work
        # -- node state(s) (mirrors evolve_node_state per entity) --------
        if kind == _K_EDGE_ADD or kind == _K_EDGE_DELETE:
            for e in ((node,) if node == other else (node, other)):
                if scope is not None and e not in scope:
                    continue
                st = work[e] if e in work else self._seed(e)
                o = other if e == node else node
                if kind == _K_EDGE_ADD:
                    if st is None:
                        st = [{}, set()]
                        work[e] = st
                    st[1].add(o)
                elif st is not None:
                    st[1].discard(o)
        elif kind == _K_NODE_ADD:
            if scope is None or node in scope:
                work[node] = [
                    dict(value) if isinstance(value, dict) else {}, set()
                ]
        elif kind == _K_NODE_DELETE:
            if scope is None or node in scope:
                work[node] = None
        elif kind == _K_NODE_ATTR_SET:
            if scope is None or node in scope:
                st = work[node] if node in work else self._seed(node)
                if st is None:
                    st = [{}, set()]
                    work[node] = st
                st[0][key] = value
        elif kind == _K_NODE_ATTR_DEL:
            if scope is None or node in scope:
                st = work[node] if node in work else self._seed(node)
                if st is not None:
                    st[0].pop(key, None)
        # -- edge attributes (mirrors PartialState.apply_event) ----------
        if other is None:
            return
        eid = canonical_edge(node, other)
        if scope is not None and eid[0] not in scope and eid[1] not in scope:
            return
        edges = self._ps.edge_attrs
        if kind == _K_EDGE_ADD:
            if isinstance(value, dict) and value:
                edges[eid] = dict(value)
            else:
                edges.pop(eid, None)
        elif kind == _K_EDGE_DELETE:
            edges.pop(eid, None)
        elif kind == _K_EDGE_ATTR_SET:
            edges.setdefault(eid, {})[key] = value
        elif kind == _K_EDGE_ATTR_DEL:
            attrs = edges.get(eid)
            if attrs is not None:
                attrs.pop(key, None)
                if not attrs:
                    edges.pop(eid, None)

    def apply_range(self, cel: ColumnarEventList, lo: int, hi: int) -> None:
        """Replay rows ``[lo, hi)`` of one list (already (time, seq)
        sorted and seq-unique within a list).

        The four topology kinds — the bulk of every stream — are inlined
        here with everything bound to locals: this loop is the hot path
        of warm replay, and a method call per row costs as much as the
        work it dispatches to.  The rare attribute kinds drop to the
        shared :meth:`_row` dispatch.
        """
        # plain lists index ~3x faster than memoryview casts, and every
        # row reads 2-3 columns — the one-off tolist() pays for itself
        # within a handful of rows
        kinds = cel._kinds.tolist()
        nodes = cel._nodes.tolist()
        others = cel._others.tolist()
        side = cel._side_entries()
        get_side = side.get
        scope = self._scope
        unscoped = scope is None
        work = self._work
        seed = self._seed
        edges = self._ps.edge_attrs
        miss = _MISSING
        for i in range(lo, hi):
            kind = kinds[i]
            node = nodes[i]
            if kind == _K_EDGE_ADD:
                other = others[i]
                if unscoped or node in scope:
                    st = work.get(node, miss)
                    if st is miss:
                        st = seed(node)
                    if st is None:
                        work[node] = st = [{}, set()]
                    st[1].add(other)
                if node != other and (unscoped or other in scope):
                    st = work.get(other, miss)
                    if st is miss:
                        st = seed(other)
                    if st is None:
                        work[other] = st = [{}, set()]
                    st[1].add(node)
                # edge attributes: a bare add on an attr-free store is a
                # no-op, so skip the eid/dict work entirely
                value = None
                if side:
                    entry = get_side(i)
                    if entry is not None:
                        value = entry[1]
                if value is not None and isinstance(value, dict) and value:
                    eid = (node, other) if node <= other else (other, node)
                    if unscoped or eid[0] in scope or eid[1] in scope:
                        edges[eid] = dict(value)
                elif edges:
                    eid = (node, other) if node <= other else (other, node)
                    if unscoped or eid[0] in scope or eid[1] in scope:
                        edges.pop(eid, None)
            elif kind == _K_EDGE_DELETE:
                other = others[i]
                if unscoped or node in scope:
                    st = work.get(node, miss)
                    if st is miss:
                        st = seed(node)
                    if st is not None:
                        st[1].discard(other)
                if node != other and (unscoped or other in scope):
                    st = work.get(other, miss)
                    if st is miss:
                        st = seed(other)
                    if st is not None:
                        st[1].discard(node)
                if edges:
                    eid = (node, other) if node <= other else (other, node)
                    if unscoped or eid[0] in scope or eid[1] in scope:
                        edges.pop(eid, None)
            elif kind == _K_NODE_ADD:
                if unscoped or node in scope:
                    entry = get_side(i) if side else None
                    value = entry[1] if entry is not None else None
                    work[node] = [
                        dict(value) if isinstance(value, dict) else {}, set()
                    ]
            elif kind == _K_NODE_DELETE:
                if unscoped or node in scope:
                    work[node] = None
            else:
                o = others[i]
                self._row(
                    kind, node, None if o == _NO_OTHER else o, get_side(i)
                )

    def apply_order(
        self, cels: Sequence[ColumnarEventList], order: Sequence[Tuple[int, int]]
    ) -> None:
        """Replay a pre-merged, deduplicated global ``(list, row)`` order
        (from :func:`merged_order`)."""
        cols = [
            (c._kinds, c._nodes, c._others, c._side_entries()) for c in cels
        ]
        row = self._row
        for li, i in order:
            kinds, nodes, others, side = cols[li]
            o = others[i]
            row(kinds[i], nodes[i], None if o == _NO_OTHER else o, side.get(i))

    def finish(self) -> None:
        """Freeze the accumulators back into the owning state's dict.
        (Writes ``_nodes`` directly — the ``nodes`` property is what
        calls this.)"""
        nodes = self._ps._nodes
        for node, st in self._work.items():
            if st is None:
                nodes.pop(node, None)
            else:
                nodes[node] = StaticNode(
                    node, frozenset(st[1]), tuple(sorted(st[0].items()))
                )
        self._work.clear()


def dedup_sorted(events: Iterable[Event]) -> List[Event]:
    """Sort by (time, seq) and drop replicated copies (same seq)."""
    seen: Set[int] = set()
    out: List[Event] = []
    for ev in sorted(events, key=Event.sort_key):
        if ev.seq not in seen:
            seen.add(ev.seq)
            out.append(ev)
    return out
