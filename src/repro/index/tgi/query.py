"""Query-side machinery for TGI: partial state reconstruction.

A TGI fetch returns micro-deltas (checkpoint state for some scope of
nodes) plus partitioned eventlists (changes since the checkpoint).
:class:`PartialState` assembles these into per-node static states at the
query time without materializing the full graph — the property that makes
node- and neighborhood-centric retrieval cheap (Table 1's TGI row).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.deltas.base import Delta, StaticEdge, StaticNode
from repro.graph.events import Event, EventKind
from repro.graph.static import Graph
from repro.index.interface import evolve_node_state
from repro.types import AttrMap, EdgeId, NodeId, canonical_edge


class PartialState:
    """Mutable view of the states of a *scope* of nodes at one time point.

    Load checkpoint deltas in root→leaf order (later loads override), then
    apply events in chronological order; each operation is restricted to
    the scope, so partitions can be reconstructed independently.
    """

    def __init__(self, scope: Optional[Set[NodeId]] = None) -> None:
        self.scope = scope  # None = unrestricted
        self.nodes: Dict[NodeId, StaticNode] = {}
        self.edge_attrs: Dict[EdgeId, AttrMap] = {}

    def _in_scope(self, node: NodeId) -> bool:
        return self.scope is None or node in self.scope

    # -- loading checkpoint deltas ----------------------------------------
    def load_delta(self, delta: Delta) -> None:
        for comp in delta:
            if isinstance(comp, StaticNode):
                if self._in_scope(comp.I):
                    self.nodes[comp.I] = comp
            else:
                if self._in_scope(comp.u) or self._in_scope(comp.v):
                    self.edge_attrs[(comp.u, comp.v)] = comp.attrs

    # -- applying events ----------------------------------------------------
    def apply_event(self, ev: Event) -> None:
        for node in set(ev.entities):
            if not self._in_scope(node):
                continue
            nxt = evolve_node_state(self.nodes.get(node), ev, node)
            if nxt is None:
                self.nodes.pop(node, None)
            else:
                self.nodes[node] = nxt
        if ev.other is None:
            return
        eid = canonical_edge(ev.node, ev.other)
        if not (self._in_scope(eid[0]) or self._in_scope(eid[1])):
            return
        if ev.kind == EventKind.EDGE_ADD:
            if isinstance(ev.value, dict) and ev.value:
                self.edge_attrs[eid] = dict(ev.value)
            else:
                self.edge_attrs.pop(eid, None)
        elif ev.kind == EventKind.EDGE_DELETE:
            self.edge_attrs.pop(eid, None)
        elif ev.kind == EventKind.EDGE_ATTR_SET:
            assert ev.key is not None
            self.edge_attrs.setdefault(eid, {})[ev.key] = ev.value
        elif ev.kind == EventKind.EDGE_ATTR_DEL:
            attrs = self.edge_attrs.get(eid)
            if attrs is not None:
                attrs.pop(ev.key, None)
                if not attrs:
                    self.edge_attrs.pop(eid, None)

    def apply_events(self, events: Iterable[Event]) -> None:
        for ev in events:
            self.apply_event(ev)

    # -- reading out ---------------------------------------------------------
    def node_state(self, node: NodeId) -> Optional[StaticNode]:
        return self.nodes.get(node)

    def to_graph(self, members: Iterable[NodeId], directed: bool = False) -> Graph:
        """Induced graph on ``members`` using the reconstructed states."""
        keep = {n for n in members if n in self.nodes}
        g = Graph(directed=directed)
        for n in keep:
            g.add_node(n, self.nodes[n].attrs)
        for n in keep:
            for nbr in self.nodes[n].E:
                if nbr in keep and not g.has_edge(n, nbr):
                    eid = canonical_edge(n, nbr)
                    g.add_edge(n, nbr, self.edge_attrs.get(eid))
        return g


def dedup_sorted(events: Iterable[Event]) -> List[Event]:
    """Sort by (time, seq) and drop replicated copies (same seq)."""
    seen: Set[int] = set()
    out: List[Event] = []
    for ev in sorted(events, key=Event.sort_key):
        if ev.seq not in seen:
            seen.add(ev.seq)
            out.append(ev)
    return out
