"""Version chains (paper Sec. 4.3c): per-node chronological pointers to the
eventlist rows holding that node's changes.

A node's chain is one row in the cluster (the ``Versions`` table), keyed
``(-1, hash(nid), ("V", nid), 0)``.  Each entry records the time range of
the node's events inside one eventlist partition plus that partition's
delta key, so a version query fetches exactly the rows it needs — the
``∑1 = |V| + 1`` cost of Table 1 (the ``+1`` is the chain row itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.kvstore.cluster import Cluster
from repro.kvstore.cost import FetchStats
from repro.index.tgi.layout import DeltaKey, version_chain_key
from repro.types import NodeId, TimePoint


@dataclass(frozen=True)
class VersionPointer:
    """One chain entry: the node has events in ``[t_min, t_max]`` inside
    the eventlist row at ``key``."""

    t_min: TimePoint
    t_max: TimePoint
    key: DeltaKey


class VersionChainStore:
    """Builder + accessor for version-chain rows."""

    def __init__(self, cluster: Cluster, placement_groups: int) -> None:
        self._cluster = cluster
        self._placement_groups = placement_groups
        self._pending: Dict[NodeId, List[VersionPointer]] = {}
        self._flushed: Dict[NodeId, int] = {}  # entries already persisted

    # -- build side ------------------------------------------------------
    def record(
        self, node: NodeId, t_min: TimePoint, t_max: TimePoint, key: DeltaKey
    ) -> None:
        """Append a pointer for ``node`` (build-time accumulation)."""
        self._pending.setdefault(node, []).append(
            VersionPointer(t_min, t_max, key)
        )

    def flush(self) -> List[DeltaKey]:
        """Write/rewrite the chain rows that gained pointers since the
        last flush (used both at initial build and on batch update).

        Returns the keys whose stored content actually changed, so the
        index can invalidate exactly those cached rows instead of
        clearing the whole delta cache — a chain without new pointers is
        skipped (its row is already stored with identical content)."""
        changed: List[DeltaKey] = []
        for node, entries in self._pending.items():
            if self._flushed.get(node) == len(entries):
                continue
            entries.sort(key=lambda p: (p.t_min, p.t_max))
            key = version_chain_key(node, self._placement_groups)
            self._cluster.put(key, tuple(entries))
            self._flushed[node] = len(entries)
            changed.append(key)
        # pending doubles as the authoritative in-memory copy so updates
        # can extend chains without re-reading rows
        return changed

    # -- query side --------------------------------------------------------
    def has_chain(self, node: NodeId) -> bool:
        """Whether a chain row for ``node`` exists in the store."""
        return node in self._flushed

    def fetch(
        self, node: NodeId, clients: int = 1
    ) -> Tuple[Tuple[VersionPointer, ...], FetchStats]:
        """Costed fetch of one node's chain (empty chain for unknown nodes)."""
        key = version_chain_key(node, self._placement_groups)
        if node not in self._flushed:
            return (), FetchStats()
        values, stats = self._cluster.multiget([key], clients=clients)
        return values[key], stats

    def pointers_in_range(
        self,
        chain: Tuple[VersionPointer, ...],
        ts: TimePoint,
        te: TimePoint,
    ) -> List[DeltaKey]:
        """Delta keys whose entries overlap the query interval ``(ts, te]``,
        deduplicated, in chain order."""
        seen = set()
        keys: List[DeltaKey] = []
        for ptr in chain:
            if ptr.t_max <= ts or ptr.t_min > te:
                continue
            if ptr.key not in seen:
                seen.add(ptr.key)
                keys.append(ptr.key)
        return keys
