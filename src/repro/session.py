"""`GraphSession`: the unified query facade over store + analytics.

The paper separates the historical graph store (TGI, Sec. 4) from the
analytics layer (TAF, Sec. 5); before this module, using both meant
hand-wiring four entry points — ``TGI.get_*``, ``TGIHandler.fetch_*``,
``SON``/``SOTS``, and the CLI's own plumbing — and nobody exploited the
planner.  A session owns all of it:

- the :class:`~repro.index.tgi.index.TGI` (cluster, executor, planner),
- a :class:`~repro.taf.handler.TGIHandler` + Spark context for the TAF
  operand paths,
- a slot in the **process-wide cache registry**
  (:data:`repro.exec.shared_caches`, keyed ``(index id, DeltaKey)``), so
  every session opened over the same stored index shares warm rows,

and exposes one fluent, lazily-planned query builder::

    session = open_graph("wiki.hgs")
    g       = session.at(900).snapshot().value
    hood    = session.at(900).khop(17, k=2)          # cost-based Alg 3 vs 4
    hist    = session.between(100, 900).node_histories([3, 5, 8])
    son     = session.nodes("id < 100").timeslice(100, 900).fetch()

Builder terminals compile to a :class:`~repro.api.QueryRequest`, price the
candidate plans via :class:`~repro.index.tgi.planner.TGIPlanner` +
``Cluster.plan_records`` (Algorithm 3 snapshot-first vs Algorithm 4
micro-delta k-hop; per-center vs shared-frontier batching), execute the
cheapest, and return a :class:`~repro.api.QueryResult` whose
:class:`~repro.api.QueryStats` carries the chosen plan and its predicted
vs. actual cost.  ``SON``/``SOTS`` come back pre-bound to the session's
handler.

Retrieval-as-planning over priced alternatives follows "Efficient
Snapshot Retrieval over Historical Graph Data" (Khurana & Deshpande,
ICDE 2013); here the unit priced is the whole fetch plan.

Direct construction of ``TGIHandler`` (and calling ``TGI.get_*`` for
anything but internal plumbing) is deprecated in favor of sessions; both
classes keep working and offer ``.session()`` shims.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api import (
    ALGO_AUTO,
    ALGO_KHOP,
    ALGO_PER_CENTER,
    ALGO_SNAPSHOT_FIRST,
    ALGORITHMS,
    QueryRequest,
    QueryResult,
    QueryStats,
)
from repro.errors import IndexError_, QueryError
from repro.exec import (
    DeltaCache,
    PlanExecutor,
    StateCheckpointCache,
    shared_caches,
)
from repro.graph.static import Graph
from repro.index.tgi import TGI, TGIPlanner, price_plan
from repro.kvstore.cost import ExecutionTimeline, FetchStats
from repro.spark.rdd import SparkContext
from repro.storage import load_index
from repro.taf.handler import TGIHandler
from repro.taf.son import SON, SOTS
from repro.types import NodeId, TimePoint

#: Shared-cache capacity used when a session enables caching but neither
#: the call site nor the index config names one.
DEFAULT_CACHE_ENTRIES = 8192

#: Smoothing factor of the per-algorithm predicted→actual correction
#: EWMA: each executed query nudges its algorithm's factor 30% of the way
#: toward the observed actual/predicted ratio.
EWMA_ALPHA = 0.3

#: Candidate preference on predicted-cost ties: the targeted algorithms'
#: bounds are conservative (the fetch loads partitions lazily and may
#: touch fewer), while snapshot-first's estimate is exact — so a tie goes
#: to the targeted plan.
_TIE_ORDER = {ALGO_KHOP: 0, ALGO_PER_CENTER: 1, ALGO_SNAPSHOT_FIRST: 2}


def open_graph(
    path: Union[str, Path],
    *,
    workers: int = 2,
    clients: int = 1,
    cache_entries: Optional[int] = None,
    cache_bytes: Optional[int] = None,
    checkpoint_entries: Optional[int] = None,
) -> "GraphSession":
    """Open a stored index as a :class:`GraphSession`.

    The session's cache-registry id is the resolved file path, so two
    ``open_graph`` calls on the same file — in the same process — share
    one :class:`~repro.exec.DeltaCache` (and, when enabled, one
    :class:`~repro.exec.StateCheckpointCache`) and serve each other's
    warm rows and replayed states.

    Args:
        path: an index file written by ``save_index`` / ``hgs build``.
        workers: simulated analytics workers for the TAF paths.
        clients: default parallel fetch clients per store round.
        cache_entries: shared-cache capacity; ``None`` defers to the
            index's ``delta_cache_entries`` (0 keeps caching off, which
            reproduces uncached fetch accounting exactly).
        cache_bytes: shared-cache byte bound (``None`` defers to the
            index's ``delta_cache_bytes``).
        checkpoint_entries: materialized-state checkpoint capacity
            (``None`` defers to the index's ``checkpoint_entries``).
    """
    index = load_index(path)
    if not isinstance(index, TGI):
        raise QueryError(
            f"open_graph requires a TGI index, got {type(index).__name__}; "
            "baseline index families remain queryable via load_index() "
            "and the HistoricalGraphIndex interface"
        )
    return GraphSession(
        index,
        index_id=index_id_for(path),
        workers=workers,
        clients=clients,
        cache_entries=cache_entries,
        cache_bytes=cache_bytes,
        checkpoint_entries=checkpoint_entries,
    )


def index_id_for(path: Union[str, Path]) -> str:
    """Registry id for a stored index: resolved path plus a content
    fingerprint (mtime + size), so rebuilding an index file in-process
    starts a fresh cache slot instead of serving the old file's rows."""
    resolved = Path(path).expanduser().resolve()
    st = resolved.stat()
    return f"{resolved}:{st.st_mtime_ns}:{st.st_size}"


class GraphSession:
    """One front door to a built :class:`TGI` and its analytics layer.

    Args:
        tgi: the index to serve queries from.
        index_id: registry key for cross-session cache sharing; sessions
            with equal ids share one cache.  ``None`` (the default for
            in-memory indexes) keeps the cache private to the ``tgi``
            object — same-object sessions still share through it, but
            nothing enters the process registry, whose keys must outlive
            the index object.
        spark_context: analytics cluster; built from ``workers`` if
            omitted.
        workers: simulated analytics workers when building the context.
        clients: default parallel fetch clients for store rounds.
        cache_entries: capacity of the shared delta cache; ``None`` uses
            the index's ``delta_cache_entries`` config (so the default
            session reproduces the index's configured fetch accounting),
            any positive value forces caching on, 0 forces it off
            (including a configured byte bound, unless ``cache_bytes``
            explicitly re-enables one).
        cache_bytes: stored-byte bound for the same cache (``None`` =
            the index's ``delta_cache_bytes``); either bound alone
            enables caching, and the byte bound makes admission
            size-aware.
        checkpoint_entries: capacity of the materialized-state checkpoint
            cache (``None`` = the index's ``checkpoint_entries``; 0 off).
            Warm-partition replay is seeded from these checkpoints and
            the planner prices warm plans accordingly.

    Sessions over a stored index (``index_id`` set) hold a reference on
    the process-wide registry slot; call :meth:`close` (or use the
    session as a context manager) when done — the last reference drops
    the shared caches (after the registry's TTL, when one is set).
    """

    def __init__(
        self,
        tgi: TGI,
        *,
        index_id: Optional[str] = None,
        spark_context: Optional[SparkContext] = None,
        workers: int = 2,
        clients: int = 1,
        cache_entries: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        checkpoint_entries: Optional[int] = None,
    ) -> None:
        if not isinstance(tgi, TGI):
            raise QueryError(
                f"GraphSession serves TGI indexes, got {type(tgi).__name__}"
            )
        self.tgi = tgi
        self.index_id = index_id
        self._registered = False
        self._closed = False
        capacity = (
            cache_entries
            if cache_entries is not None
            else tgi.config.delta_cache_entries
        )
        if cache_bytes is not None:
            byte_bound = cache_bytes
        elif cache_entries == 0:
            # the documented contract: an explicit cache_entries=0 forces
            # caching off outright — it must not be resurrected by the
            # index's configured byte bound
            byte_bound = 0
        else:
            byte_bound = tgi.config.delta_cache_bytes
        ckpt_capacity = (
            checkpoint_entries
            if checkpoint_entries is not None
            else tgi.config.checkpoint_entries
        )
        if capacity < 0 or byte_bound < 0:
            raise QueryError("cache_entries cannot be negative")
        if ckpt_capacity < 0:
            raise QueryError("checkpoint_entries cannot be negative")
        caching = capacity > 0 or byte_bound > 0
        slot = None
        if index_id is not None and (caching or ckpt_capacity > 0):
            slot = shared_caches.acquire(
                index_id,
                delta_entries=capacity,
                delta_bytes=byte_bound,
                checkpoint_entries=ckpt_capacity,
                checkpoint_admission=tgi.config.checkpoint_admission,
            )
            self._registered = True
        if caching:
            if slot is not None:
                self.cache = slot.delta
            else:
                # anonymous in-memory index: reuse its own cache or make
                # a private one — never a registry slot keyed by object
                # identity (id() reuse would alias a dead index's rows)
                self.cache = (
                    tgi.delta_cache if tgi.delta_cache is not None
                    else DeltaCache(capacity, byte_bound)
                )
            # rebind the index's executor so every path — direct TGI
            # calls, TAF fetches, session queries — reads through the
            # shared cache
            tgi.delta_cache = self.cache
            tgi.executor = PlanExecutor(tgi.cluster, self.cache)
        else:
            self.cache = None
            # an earlier session may have bound a cache to this index;
            # capacity 0 must really mean uncached accounting
            tgi.delta_cache = None
            tgi.executor = PlanExecutor(tgi.cluster, None)
        if ckpt_capacity > 0:
            if slot is not None:
                self.checkpoint_cache = slot.checkpoints
            else:
                self.checkpoint_cache = (
                    tgi.checkpoints if tgi.checkpoints is not None
                    else StateCheckpointCache(
                        ckpt_capacity,
                        admission=tgi.config.checkpoint_admission,
                    )
                )
            tgi.checkpoints = self.checkpoint_cache
        else:
            self.checkpoint_cache = None
            # checkpoint_entries 0 must really mean replay-from-root
            tgi.checkpoints = None
        self.sc = spark_context or SparkContext(num_workers=workers)
        self.clients = clients
        self.handler = TGIHandler(
            tgi, self.sc, clients_per_partition=clients
        )
        self.planner = TGIPlanner(tgi)
        self.last_result: Optional[QueryResult] = None
        # per-algorithm EWMA of observed actual/predicted sim-ms ratios;
        # applied multiplicatively to subsequent candidate pricing
        self._correction: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this session's reference on the shared cache registry.

        Idempotent.  The index object stays usable (its caches remain
        bound); only the registry slot's lifetime is affected — when the
        last session over an index id closes, the slot is dropped (or
        TTL-retained) so long-running services don't accumulate caches
        for every index they ever opened."""
        if self._closed:
            return
        self._closed = True
        if self._registered and self.index_id is not None:
            shared_caches.release(self.index_id)

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def corrections(self) -> Dict[str, float]:
        """The current per-algorithm predicted→actual correction factors
        (selection feedback loop; 1.0 = trust the cost model as-is)."""
        return dict(self._correction)

    def _corrected(self, candidates: Dict[str, float]) -> Dict[str, float]:
        return {
            name: ms * self._correction.get(name, 1.0)
            for name, ms in candidates.items()
        }

    def _observe(
        self, algorithm: str, predicted_raw: Optional[float],
        actual: float,
    ) -> None:
        """Fold one query's predicted-vs-actual outcome into the
        algorithm's correction factor."""
        if predicted_raw is None or predicted_raw <= 0.0:
            return
        ratio = actual / predicted_raw
        prev = self._correction.get(algorithm, 1.0)
        self._correction[algorithm] = (
            (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * ratio
        )

    # ------------------------------------------------------------------
    # construction shims
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, tgi: TGI, **kwargs) -> "GraphSession":
        """Session over an already-built (or just-loaded) index."""
        return cls(tgi, **kwargs)

    @classmethod
    def from_handler(cls, handler: TGIHandler, **kwargs) -> "GraphSession":
        """Adopt a legacy hand-wired :class:`TGIHandler` (deprecation
        shim: the session reuses its index, Spark context and client
        count instead of constructing fresh ones)."""
        kwargs.setdefault("spark_context", handler.sc)
        kwargs.setdefault("clients", handler.clients_per_partition)
        session = cls(handler.tgi, **kwargs)
        session.handler = handler
        return session

    # ------------------------------------------------------------------
    # fluent builder entry points
    # ------------------------------------------------------------------
    def at(self, t: TimePoint) -> "TimeView":
        """Queries anchored at one time point (snapshot, k-hop, state)."""
        return TimeView(self, t)

    def between(self, ts: TimePoint, te: TimePoint) -> "RangeView":
        """Queries over an interval (histories, neighborhood evolution)."""
        if te < ts:
            raise QueryError(f"empty interval [{ts}, {te}]")
        return RangeView(self, ts, te)

    def nodes(self, predicate=None) -> SON:
        """A lazy :class:`~repro.taf.son.SON` pre-bound to this session's
        handler; ``predicate`` (string or callable) is applied as a
        ``Select`` before fetch."""
        son = SON(self.handler)
        if predicate is not None:
            son = son.Select(predicate)
        return son

    def subgraphs(self, k: int = 1, predicate=None) -> SOTS:
        """A lazy :class:`~repro.taf.son.SOTS` of k-hop neighborhoods
        pre-bound to this session's handler."""
        sots = SOTS(k, self.handler)
        if predicate is not None:
            sots = sots.Select(predicate)
        return sots

    # ------------------------------------------------------------------
    # request pricing
    # ------------------------------------------------------------------
    def _khop_candidates(
        self, request: QueryRequest
    ) -> Tuple[Dict[str, float], bool, Dict[str, List[str]]]:
        """Predicted sim-ms per candidate k-hop plan, whether the
        targeted bound could be planned at all (a single dead center
        can't — the caller then lets Algorithm 4 raise cleanly), and
        each candidate's planner notes (why a plan prices the way it
        does: stats bounds, checkpoint seedings, warm snapshots)."""
        assert request.t is not None
        clients = request.clients
        snap_plan = self.planner.plan_snapshot(request.t)
        candidates: Dict[str, float] = {
            ALGO_SNAPSHOT_FIRST: price_plan(
                self.tgi.cluster, snap_plan, clients=clients,
            )
        }
        notes: Dict[str, List[str]] = {
            ALGO_SNAPSHOT_FIRST: list(snap_plan.notes)
        }
        per_center = 0.0
        union_keys: List = []
        union_seen = set()
        khop_notes: List[str] = []
        plannable = False
        for center in dict.fromkeys(request.nodes):
            try:
                sub = self.planner.plan_khop(center, request.t, k=request.k)
            except IndexError_:
                continue
            plannable = True
            per_center += price_plan(self.tgi.cluster, sub, clients=clients)
            if sub.expected_keys is not None:
                khop_notes.append(
                    f"center {center}: expected "
                    f"{len(sub.expected_keys)}/{sub.num_keys} keys"
                )
            for note in sub.notes:
                if note not in khop_notes:
                    khop_notes.append(note)
            for key in sub.pricing_keys():
                if key not in union_seen:
                    union_seen.add(key)
                    union_keys.append(key)
        if plannable:
            notes[ALGO_KHOP] = khop_notes
            if request.single:
                candidates[ALGO_KHOP] = per_center
            else:
                # the shared frontier fetches the per-center union once
                candidates[ALGO_KHOP] = price_plan(
                    self.tgi.cluster, union_keys, clients=clients
                )
                candidates[ALGO_PER_CENTER] = per_center
                notes[ALGO_PER_CENTER] = list(khop_notes)
        return candidates, plannable, notes

    def _choose_khop(
        self, request: QueryRequest
    ) -> Tuple[str, Dict[str, float], Dict[str, float], Dict[str, List[str]]]:
        """Resolve the algorithm for a k-hop request: forced choices pass
        through; ``auto`` takes the cheapest priced candidate (ties break
        toward the targeted bound, see :data:`_TIE_ORDER`), after the
        per-algorithm EWMA corrections learned from earlier queries.
        Returns the choice, the corrected candidate prices (what callers
        report), the raw model prices (what the feedback loop compares
        actuals against), and each candidate's planner notes."""
        raw, plannable, notes = self._khop_candidates(request)
        candidates = self._corrected(raw)
        if request.algorithm != ALGO_AUTO:
            chosen = request.algorithm
            if chosen == ALGO_PER_CENTER and request.single:
                chosen = ALGO_KHOP  # one center: the loop *is* Algorithm 4
            return chosen, candidates, raw, notes
        if not plannable:
            # no alive center to bound: run Algorithm 4, which raises (or
            # returns per-center Nones) without fetching a full snapshot
            return ALGO_KHOP, candidates, raw, notes
        chosen = min(
            candidates,
            key=lambda name: (candidates[name], _TIE_ORDER[name]),
        )
        return chosen, candidates, raw, notes

    def _predict(self, request: QueryRequest) -> Optional[float]:
        """Predicted cost for the non-k-hop kinds (single candidate)."""
        try:
            if request.kind == "snapshot":
                return price_plan(
                    self.tgi.cluster,
                    self.planner.plan_snapshot(request.t),
                    clients=request.clients,
                )
            if request.kind in ("node_histories", "node_state"):
                ts = request.ts if request.kind == "node_histories" else request.t
                te = request.te if request.kind == "node_histories" else request.t
                return price_plan(
                    self.tgi.cluster,
                    self.planner.plan_node_histories(request.nodes, ts, te),
                    clients=request.clients,
                )
        except IndexError_:
            return None
        return None  # khop_history: no metadata-only bound yet

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, request: QueryRequest) -> QueryResult:
        """Price, select, and run one compiled request."""
        if request.kind == "khop":
            result = self._execute_khop(request)
        else:
            result = self._execute_simple(request)
        self.last_result = result
        return result

    def _execute_simple(self, request: QueryRequest) -> QueryResult:
        tgi = self.tgi
        predicted_raw = self._predict(request)
        algorithm = {
            "snapshot": "snapshot",
            "node_state": "micro-delta",
            "node_histories": "batched-histories",
            "khop_history": "khop-history",
        }[request.kind]
        if request.kind == "snapshot":
            value = tgi.get_snapshot(request.t, clients=request.clients)
        elif request.kind == "node_state":
            value = tgi.get_node_state(
                request.nodes[0], request.t, clients=request.clients
            )
        elif request.kind == "node_histories":
            histories = tgi.get_node_histories(
                list(request.nodes), request.ts, request.te,
                clients=request.clients,
            )
            value = histories[0] if request.single else histories
        else:  # khop_history
            value = tgi.get_khop_history(
                request.nodes[0], request.ts, request.te,
                clients=request.clients,
            )
        predicted = (
            predicted_raw * self._correction.get(algorithm, 1.0)
            if predicted_raw is not None
            else None
        )
        self._observe(
            algorithm, predicted_raw, tgi.last_fetch_stats.sim_time_ms
        )
        stats = QueryStats.from_fetch(
            tgi.last_fetch_stats,
            algorithm=algorithm,
            predicted_ms=predicted,
            candidates={algorithm: predicted} if predicted is not None else {},
        )
        return QueryResult(request, value, stats)

    def _execute_khop(self, request: QueryRequest) -> QueryResult:
        tgi = self.tgi
        chosen, candidates, raw, _notes = self._choose_khop(request)
        t, k, clients = request.t, request.k, request.clients
        if chosen == ALGO_KHOP:
            if request.single:
                value = tgi.get_khop(request.nodes[0], t, k=k,
                                     clients=clients)
            else:
                value = tgi.get_khops(list(request.nodes), t, k=k,
                                      clients=clients)
            fetch = tgi.last_fetch_stats
        elif chosen == ALGO_PER_CENTER:
            # fetch each *distinct* center once (matching how the
            # candidate was priced); duplicate inputs share the result
            fetch = FetchStats()
            graphs: Dict[NodeId, Optional[Graph]] = {}
            for center in dict.fromkeys(request.nodes):
                try:
                    graphs[center] = tgi.get_khop(center, t, k=k,
                                                  clients=clients)
                except IndexError_:
                    graphs[center] = None
                fetch.merge(tgi.last_fetch_stats)
            value = [graphs[center] for center in request.nodes]
        elif chosen == ALGO_SNAPSHOT_FIRST:
            if request.single:
                value = tgi.get_khop_snapshot_first(
                    request.nodes[0], t, k=k, clients=clients
                )
            else:
                g = tgi.get_snapshot(t, clients=clients)
                value = [
                    g.khop_subgraph(center, k) if g.has_node(center) else None
                    for center in request.nodes
                ]
            fetch = tgi.last_fetch_stats
        else:
            raise QueryError(f"unknown k-hop algorithm {chosen!r}")
        self._observe(chosen, raw.get(chosen), fetch.sim_time_ms)
        stats = QueryStats.from_fetch(
            fetch,
            algorithm=chosen,
            predicted_ms=candidates.get(chosen),
            candidates=candidates,
        )
        return QueryResult(request, value, stats)

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------
    def explain(self, request: QueryRequest) -> str:
        """The retrieval plan and its cost estimate, without fetching.

        For k-hop requests the output also lists every candidate's
        predicted cost and which one ``auto`` would pick; for pipelined
        indexes it appends the executor's round timeline.
        """
        chosen: Optional[str] = None
        candidates: Dict[str, float] = {}
        candidate_notes: Dict[str, List[str]] = {}
        if request.kind == "snapshot":
            plan = self.planner.plan_snapshot(request.t)
        elif request.kind == "node_state":
            plan = self.planner.plan_node_history(
                request.nodes[0], request.t, request.t
            )
        elif request.kind == "node_histories":
            if request.single:
                plan = self.planner.plan_node_history(
                    request.nodes[0], request.ts, request.te
                )
            else:
                plan = self.planner.plan_node_histories(
                    request.nodes, request.ts, request.te
                )
        elif request.kind == "khop_history":
            plan = self.planner.plan_node_history(
                request.nodes[0], request.ts, request.te
            )
        elif request.kind == "khop":
            chosen, candidates, _raw, candidate_notes = (
                self._choose_khop(request)
            )
            if chosen == ALGO_SNAPSHOT_FIRST:
                plan = self.planner.plan_snapshot(request.t)
            elif request.single:
                plan = self.planner.plan_khop(
                    request.nodes[0], request.t, k=request.k
                )
            else:
                plan = self.planner.plan_khops(
                    request.nodes, request.t, k=request.k
                )
        else:
            raise QueryError(f"cannot explain query kind {request.kind!r}")

        lines = [plan.explain()]
        records = self.tgi.cluster.plan_records(
            plan.pricing_keys(), clients=request.clients
        )
        est = price_plan(self.tgi.cluster, plan, clients=request.clients)
        lines.append(
            f"estimate: {len(records)} requests, "
            f"~{est:.2f} sim-ms as one sequential round"
        )
        if candidates:
            ranked = ", ".join(
                f"{name}={ms:.2f} sim-ms"
                for name, ms in sorted(candidates.items(),
                                       key=lambda kv: kv[1])
            )
            lines.append(f"candidates: {ranked} -> {chosen}")
            # per-candidate verdicts: why each plan priced as it did and,
            # for the losers, the margin it was rejected on
            best = candidates.get(chosen)
            for name, ms in sorted(candidates.items(),
                                   key=lambda kv: kv[1]):
                if name == chosen:
                    verdict = "chosen"
                elif best is not None:
                    verdict = f"rejected (+{ms - best:.2f} sim-ms vs {chosen})"
                else:
                    verdict = "rejected"
                lines.append(f"  - {name}: {ms:.2f} sim-ms — {verdict}")
                for note in candidate_notes.get(name, []):
                    lines.append(f"      note: {note}")
        if self.tgi.config.pipeline:
            lines.append(self._timeline_estimate(plan, request.clients))
        return "\n".join(lines)

    def _timeline_estimate(self, plan, clients: int) -> str:
        """Group the plan's steps into the multiget rounds the executor
        would issue (chained steps depend on round-1 data, so they form a
        second round) and lay them on an :class:`ExecutionTimeline` —
        overlap accrues only across concurrent plans, never within one
        query's dependency chain.  Plans carrying a statistics-backed
        expected key set are laid out over that set, so the timeline
        agrees with the printed estimate rather than the worst-case
        sound bound."""
        pricing = (
            set(plan.expected_keys)
            if getattr(plan, "expected_keys", None) is not None
            else None
        )
        first_round: List = []
        chained_round: List = []
        for step in plan.steps:
            target = chained_round if step.chained else first_round
            target.extend(
                key for key in step.keys
                if pricing is None or key in pricing
            )
        timeline = ExecutionTimeline(self.tgi.cluster.config.cost_model)
        at = 0.0
        for keys in (first_round, chained_round):
            if not keys:
                continue
            timing = timeline.submit(
                self.tgi.cluster.plan_records(keys, clients=clients), at=at
            )
            at = timing.completed_ms
        return timeline.describe()


@dataclass(frozen=True)
class TimeView:
    """Queries anchored at one time point (``session.at(t)``); terminal
    methods compile a :class:`QueryRequest` and execute it — nothing is
    planned or fetched until then."""

    session: GraphSession
    t: TimePoint

    def _clients(self, clients: Optional[int]) -> int:
        return clients if clients is not None else self.session.clients

    def snapshot(self, clients: Optional[int] = None) -> QueryResult:
        """Algorithm 1: the whole graph as of ``t``."""
        return self.session.execute(QueryRequest(
            kind="snapshot", t=self.t, clients=self._clients(clients),
        ))

    def khop(
        self,
        center: Union[NodeId, Sequence[NodeId]],
        k: int = 1,
        algorithm: str = ALGO_AUTO,
        clients: Optional[int] = None,
    ) -> QueryResult:
        """k-hop neighborhood(s) at ``t``.

        A scalar ``center`` yields one :class:`~repro.graph.static.Graph`
        (raising if the node is dead, matching ``TGI.get_khop``); a
        sequence yields one graph-or-``None`` per center.  ``algorithm``
        picks Algorithm 3 vs 4 (and per-center vs shared-frontier) —
        ``auto`` defers to plan pricing.
        """
        # node ids are scalars (ints); anything iterable — list, tuple,
        # set, range, generator — is a population of centers
        single = not hasattr(center, "__iter__")
        nodes = (center,) if single else tuple(center)
        return self.session.execute(QueryRequest(
            kind="khop", t=self.t, nodes=nodes, k=k,
            algorithm=algorithm, clients=self._clients(clients),
            single=single,
        ))

    def node_state(
        self, node: NodeId, clients: Optional[int] = None
    ) -> QueryResult:
        """One node's static state at ``t`` (``None`` when not alive)."""
        return self.session.execute(QueryRequest(
            kind="node_state", t=self.t, nodes=(node,),
            clients=self._clients(clients), single=True,
        ))


@dataclass(frozen=True)
class RangeView:
    """Interval queries (``session.between(ts, te)``)."""

    session: GraphSession
    ts: TimePoint
    te: TimePoint

    def _clients(self, clients: Optional[int]) -> int:
        return clients if clients is not None else self.session.clients

    def node_history(
        self, node: NodeId, clients: Optional[int] = None
    ) -> QueryResult:
        """Algorithm 2: one node's evolution over ``[ts, te]``."""
        return self.session.execute(QueryRequest(
            kind="node_histories", ts=self.ts, te=self.te, nodes=(node,),
            clients=self._clients(clients), single=True,
        ))

    def node_histories(
        self, nodes: Sequence[NodeId], clients: Optional[int] = None
    ) -> QueryResult:
        """Batched Algorithm 2 over a node population (O(1) rounds)."""
        return self.session.execute(QueryRequest(
            kind="node_histories", ts=self.ts, te=self.te,
            nodes=tuple(nodes), clients=self._clients(clients),
        ))

    def khop_history(
        self, center: NodeId, clients: Optional[int] = None
    ) -> QueryResult:
        """Algorithm 5: 1-hop neighborhood evolution around ``center``."""
        return self.session.execute(QueryRequest(
            kind="khop_history", ts=self.ts, te=self.te, nodes=(center,),
            clients=self._clients(clients), single=True,
        ))

    def nodes(self, predicate=None) -> SON:
        """A pre-bound lazy SoN already timesliced to ``[ts, te]``."""
        return self.session.nodes(predicate).Timeslice(self.ts, self.te)

    def subgraphs(self, k: int = 1, predicate=None) -> SOTS:
        """A pre-bound lazy SoTS already timesliced to ``[ts, te]``."""
        return self.session.subgraphs(k, predicate).Timeslice(
            self.ts, self.te
        )
