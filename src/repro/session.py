"""`GraphSession`: the unified query facade over store + analytics.

The paper separates the historical graph store (TGI, Sec. 4) from the
analytics layer (TAF, Sec. 5); before this module, using both meant
hand-wiring four entry points — ``TGI.get_*``, ``TGIHandler.fetch_*``,
``SON``/``SOTS``, and the CLI's own plumbing — and nobody exploited the
planner.  A session owns all of it:

- the :class:`~repro.index.tgi.index.TGI` (cluster, executor, planner),
- a :class:`~repro.taf.handler.TGIHandler` + Spark context for the TAF
  operand paths,
- a slot in the **process-wide cache registry**
  (:data:`repro.exec.shared_caches`, keyed ``(index id, DeltaKey)``), so
  every session opened over the same stored index shares warm rows,

and exposes one fluent, lazily-planned query builder::

    session = open_graph("wiki.hgs")
    g       = session.at(900).snapshot().value
    hood    = session.at(900).khop(17, k=2)          # cost-based Alg 3 vs 4
    hist    = session.between(100, 900).node_histories([3, 5, 8])
    son     = session.nodes("id < 100").timeslice(100, 900).fetch()

Builder terminals compile to a :class:`~repro.api.QueryRequest`, price the
candidate plans via :class:`~repro.index.tgi.planner.TGIPlanner` +
``Cluster.plan_records`` (Algorithm 3 snapshot-first vs Algorithm 4
micro-delta k-hop; per-center vs shared-frontier batching), execute the
cheapest, and return a :class:`~repro.api.QueryResult` whose
:class:`~repro.api.QueryStats` carries the chosen plan and its predicted
vs. actual cost.  ``SON``/``SOTS`` come back pre-bound to the session's
handler.

Retrieval-as-planning over priced alternatives follows "Efficient
Snapshot Retrieval over Historical Graph Data" (Khurana & Deshpande,
ICDE 2013); here the unit priced is the whole fetch plan.

Direct construction of ``TGIHandler`` (and calling ``TGI.get_*`` for
anything but internal plumbing) is deprecated in favor of sessions; both
classes keep working and offer ``.session()`` shims.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.api import (
    ALGO_AUTO,
    ALGO_KHOP,
    ALGO_PER_CENTER,
    ALGO_SNAPSHOT_FIRST,
    ALGORITHMS,
    DeadlineExceeded,
    QueryRequest,
    QueryResult,
    QueryStats,
)
from repro.deltas.columnar import decoded_events_total
from repro.errors import IndexError_, QueryError, StorageError
from repro.exec import (
    DeltaCache,
    PlanExecutor,
    StateCheckpointCache,
    cancel_scope,
    shared_caches,
)
from repro.graph.static import Graph
from repro.index.tgi import TGI, TGIPlanner, price_plan
from repro.kvstore.cost import ExecutionTimeline, FetchStats
from repro.kvstore.degrade import PartialCollector, partial_scope
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer, current_span
from repro.spark.rdd import SparkContext
from repro.storage import load_index
from repro.taf.handler import TGIHandler
from repro.taf.son import SON, SOTS
from repro.types import NodeId, TimePoint

#: Shared-cache capacity used when a session enables caching but neither
#: the call site nor the index config names one.
DEFAULT_CACHE_ENTRIES = 8192

#: Smoothing factor of the per-algorithm predicted→actual correction
#: EWMA: each executed query nudges its algorithm's factor 30% of the way
#: toward the observed actual/predicted ratio.
EWMA_ALPHA = 0.3

#: Candidate preference on predicted-cost ties: the targeted algorithms'
#: bounds are conservative (the fetch loads partitions lazily and may
#: touch fewer), while snapshot-first's estimate is exact — so a tie goes
#: to the targeted plan.
_TIE_ORDER = {ALGO_KHOP: 0, ALGO_PER_CENTER: 1, ALGO_SNAPSHOT_FIRST: 2}


@dataclass
class _BatchSpec:
    """One batched request compiled for shared execution: its exec
    plan(s), the per-plan finalizers, the checkpoint counters resolved at
    plan-build time, and the recipe reassembling the finalized outputs
    into the request's value shape."""

    plans: List[Any]
    finalizes: List[Callable[[Dict], Any]]
    ckpts: List[Dict[str, int]]
    assemble: Callable[[List[Any]], Any]
    algorithm: str
    predicted: Optional[float]
    candidates: Dict[str, float]
    #: index of this spec's first plan in the batch's shared plan list
    first: int = 0


def open_graph(
    path: Union[str, Path],
    *,
    workers: int = 2,
    clients: int = 1,
    cache_entries: Optional[int] = None,
    cache_bytes: Optional[int] = None,
    checkpoint_entries: Optional[int] = None,
) -> "GraphSession":
    """Open a stored index as a :class:`GraphSession`.

    The session's cache-registry id is the resolved file path, so two
    ``open_graph`` calls on the same file — in the same process — share
    one :class:`~repro.exec.DeltaCache` (and, when enabled, one
    :class:`~repro.exec.StateCheckpointCache`) and serve each other's
    warm rows and replayed states.

    Args:
        path: an index file written by ``save_index`` / ``hgs build``.
        workers: simulated analytics workers for the TAF paths.
        clients: default parallel fetch clients per store round.
        cache_entries: shared-cache capacity; ``None`` defers to the
            index's ``delta_cache_entries`` (0 keeps caching off, which
            reproduces uncached fetch accounting exactly).
        cache_bytes: shared-cache byte bound (``None`` defers to the
            index's ``delta_cache_bytes``).
        checkpoint_entries: materialized-state checkpoint capacity
            (``None`` defers to the index's ``checkpoint_entries``).
    """
    index = load_index(path)
    if not isinstance(index, TGI):
        raise QueryError(
            f"open_graph requires a TGI index, got {type(index).__name__}; "
            "baseline index families remain queryable via load_index() "
            "and the HistoricalGraphIndex interface"
        )
    return GraphSession(
        index,
        index_id=index_id_for(path),
        workers=workers,
        clients=clients,
        cache_entries=cache_entries,
        cache_bytes=cache_bytes,
        checkpoint_entries=checkpoint_entries,
    )


def index_id_for(path: Union[str, Path]) -> str:
    """Registry id for a stored index: resolved path plus a content
    fingerprint (mtime + size), so rebuilding an index file in-process
    starts a fresh cache slot instead of serving the old file's rows."""
    resolved = Path(path).expanduser().resolve()
    st = resolved.stat()
    return f"{resolved}:{st.st_mtime_ns}:{st.st_size}"


class GraphSession:
    """One front door to a built :class:`TGI` and its analytics layer.

    Args:
        tgi: the index to serve queries from.
        index_id: registry key for cross-session cache sharing; sessions
            with equal ids share one cache.  ``None`` (the default for
            in-memory indexes) keeps the cache private to the ``tgi``
            object — same-object sessions still share through it, but
            nothing enters the process registry, whose keys must outlive
            the index object.
        spark_context: analytics cluster; built from ``workers`` if
            omitted.
        workers: simulated analytics workers when building the context.
        clients: default parallel fetch clients for store rounds.
        cache_entries: capacity of the shared delta cache; ``None`` uses
            the index's ``delta_cache_entries`` config (so the default
            session reproduces the index's configured fetch accounting),
            any positive value forces caching on, 0 forces it off
            (including a configured byte bound, unless ``cache_bytes``
            explicitly re-enables one).
        cache_bytes: stored-byte bound for the same cache (``None`` =
            the index's ``delta_cache_bytes``); either bound alone
            enables caching, and the byte bound makes admission
            size-aware.
        checkpoint_entries: capacity of the materialized-state checkpoint
            cache (``None`` = the index's ``checkpoint_entries``; 0 off).
            Warm-partition replay is seeded from these checkpoints and
            the planner prices warm plans accordingly.

    Sessions over a stored index (``index_id`` set) hold a reference on
    the process-wide registry slot; call :meth:`close` (or use the
    session as a context manager) when done — the last reference drops
    the shared caches (after the registry's TTL, when one is set).
    """

    def __init__(
        self,
        tgi: TGI,
        *,
        index_id: Optional[str] = None,
        spark_context: Optional[SparkContext] = None,
        workers: int = 2,
        clients: int = 1,
        cache_entries: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        checkpoint_entries: Optional[int] = None,
    ) -> None:
        if not isinstance(tgi, TGI):
            raise QueryError(
                f"GraphSession serves TGI indexes, got {type(tgi).__name__}"
            )
        self.tgi = tgi
        self.index_id = index_id
        self._registered = False
        self._closed = False
        capacity = (
            cache_entries
            if cache_entries is not None
            else tgi.config.delta_cache_entries
        )
        if cache_bytes is not None:
            byte_bound = cache_bytes
        elif cache_entries == 0:
            # the documented contract: an explicit cache_entries=0 forces
            # caching off outright — it must not be resurrected by the
            # index's configured byte bound
            byte_bound = 0
        else:
            byte_bound = tgi.config.delta_cache_bytes
        ckpt_capacity = (
            checkpoint_entries
            if checkpoint_entries is not None
            else tgi.config.checkpoint_entries
        )
        if capacity < 0 or byte_bound < 0:
            raise QueryError("cache_entries cannot be negative")
        if ckpt_capacity < 0:
            raise QueryError("checkpoint_entries cannot be negative")
        caching = capacity > 0 or byte_bound > 0
        slot = None
        if index_id is not None and (caching or ckpt_capacity > 0):
            slot = shared_caches.acquire(
                index_id,
                delta_entries=capacity,
                delta_bytes=byte_bound,
                checkpoint_entries=ckpt_capacity,
                checkpoint_admission=tgi.config.checkpoint_admission,
            )
            self._registered = True
        if caching:
            if slot is not None:
                self.cache = slot.delta
            else:
                # anonymous in-memory index: reuse its own cache or make
                # a private one — never a registry slot keyed by object
                # identity (id() reuse would alias a dead index's rows)
                self.cache = (
                    tgi.delta_cache if tgi.delta_cache is not None
                    else DeltaCache(capacity, byte_bound)
                )
            # rebind the index's executor so every path — direct TGI
            # calls, TAF fetches, session queries — reads through the
            # shared cache
            tgi.delta_cache = self.cache
            tgi.executor = PlanExecutor(
                tgi.cluster, self.cache,
                apply_workers=tgi.config.apply_workers,
                coalesce=tgi.config.coalesce,
            )
        else:
            self.cache = None
            # an earlier session may have bound a cache to this index;
            # capacity 0 must really mean uncached accounting
            tgi.delta_cache = None
            tgi.executor = PlanExecutor(
                tgi.cluster, None,
                apply_workers=tgi.config.apply_workers,
                coalesce=tgi.config.coalesce,
            )
        if ckpt_capacity > 0:
            if slot is not None:
                self.checkpoint_cache = slot.checkpoints
            else:
                self.checkpoint_cache = (
                    tgi.checkpoints if tgi.checkpoints is not None
                    else StateCheckpointCache(
                        ckpt_capacity,
                        admission=tgi.config.checkpoint_admission,
                    )
                )
            tgi.checkpoints = self.checkpoint_cache
        else:
            self.checkpoint_cache = None
            # checkpoint_entries 0 must really mean replay-from-root
            tgi.checkpoints = None
        self.sc = spark_context or SparkContext(num_workers=workers)
        self.clients = clients
        self.handler = TGIHandler(
            tgi, self.sc, clients_per_partition=clients
        )
        self.planner = TGIPlanner(tgi)
        #: Wall clock for deadline enforcement (monotonic seconds);
        #: injectable so tests can drive expiry deterministically.
        self.clock: Callable[[], float] = _time.monotonic
        self.last_result: Optional[QueryResult] = None
        # per-algorithm EWMA of observed actual/predicted sim-ms ratios;
        # applied multiplicatively to subsequent candidate pricing
        self._correction: Dict[str, float] = {}
        #: Optional :class:`repro.obs.Tracer`.  ``None`` (the default)
        #: leaves every instrumentation site on its no-op path, so
        #: untraced accounting is bit-identical to pre-tracing builds.
        self.tracer: Optional[Tracer] = None
        # session-lifetime query totals for export_metrics(): kind ->
        # {queries, requests, bytes, sim_ms}.  Plain counters, no RNG.
        self._totals: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this session's reference on the shared cache registry.

        Idempotent.  The index object stays usable (its caches remain
        bound); only the registry slot's lifetime is affected — when the
        last session over an index id closes, the slot is dropped (or
        TTL-retained) so long-running services don't accumulate caches
        for every index they ever opened."""
        if self._closed:
            return
        self._closed = True
        if self._registered and self.index_id is not None:
            shared_caches.release(self.index_id)

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def corrections(self) -> Dict[str, float]:
        """The current per-algorithm predicted→actual correction factors
        (selection feedback loop; 1.0 = trust the cost model as-is)."""
        return dict(self._correction)

    def _corrected(self, candidates: Dict[str, float]) -> Dict[str, float]:
        return {
            name: ms * self._correction.get(name, 1.0)
            for name, ms in candidates.items()
        }

    def _record_totals(self, kind: str, stats: QueryStats) -> None:
        row = self._totals.get(kind)
        if row is None:
            row = self._totals[kind] = {
                "queries": 0.0, "requests": 0.0, "bytes": 0.0, "sim_ms": 0.0,
            }
        row["queries"] += 1.0
        row["requests"] += float(stats.requests or 0)
        row["bytes"] += float(stats.bytes_read or 0)
        row["sim_ms"] += float(stats.sim_time_ms or 0.0)

    def export_metrics(self, fmt: str = "json"):
        """Session-level telemetry for non-service users.

        ``fmt="json"`` returns a plain dict: the per-algorithm EWMA
        :attr:`corrections`, the index's learned per-k frontier margin
        scales, and session-lifetime per-kind query totals.
        ``fmt="prometheus"`` renders the same values through a
        :class:`~repro.obs.MetricsRegistry` in text exposition format.
        """
        frontier = self.tgi.frontier_corrections
        if fmt == "json":
            return {
                "corrections": self.corrections,
                "frontier_margin_scale": {
                    str(k): v for k, v in sorted(frontier.items())
                },
                "totals": {
                    kind: dict(row)
                    for kind, row in sorted(self._totals.items())
                },
            }
        if fmt != "prometheus":
            raise QueryError(f"unknown metrics format {fmt!r}")
        registry = MetricsRegistry()
        for algo, scale in sorted(self._correction.items()):
            registry.gauge(
                "hgs_planner_correction",
                "per-algorithm EWMA predicted-to-actual scale",
                labels={"algorithm": algo},
            ).set(scale)
        for k, scale in sorted(frontier.items()):
            registry.gauge(
                "hgs_frontier_margin_scale",
                "learned k-hop frontier occupancy margin multiplier",
                labels={"k": k},
            ).set(scale)
        for kind, row in sorted(self._totals.items()):
            labels = {"kind": kind}
            registry.counter(
                "hgs_session_queries_total",
                "queries executed by this session", labels=labels,
            ).inc(row["queries"])
            registry.counter(
                "hgs_session_store_requests_total",
                "store requests issued (fair shares)", labels=labels,
            ).inc(row["requests"])
            registry.counter(
                "hgs_session_store_bytes_total",
                "stored bytes read (fair shares)", labels=labels,
            ).inc(row["bytes"])
            registry.counter(
                "hgs_session_sim_ms_total",
                "simulated query milliseconds", labels=labels,
            ).inc(row["sim_ms"])
        return registry.render()

    def _observe(
        self, algorithm: str, predicted_raw: Optional[float],
        actual: float,
    ) -> None:
        """Fold one query's predicted-vs-actual outcome into the
        algorithm's correction factor."""
        if predicted_raw is None or predicted_raw <= 0.0:
            return
        ratio = actual / predicted_raw
        prev = self._correction.get(algorithm, 1.0)
        self._correction[algorithm] = (
            (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * ratio
        )

    # ------------------------------------------------------------------
    # construction shims
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, tgi: TGI, **kwargs) -> "GraphSession":
        """Session over an already-built (or just-loaded) index."""
        return cls(tgi, **kwargs)

    @classmethod
    def from_handler(cls, handler: TGIHandler, **kwargs) -> "GraphSession":
        """Adopt a legacy hand-wired :class:`TGIHandler` (deprecation
        shim: the session reuses its index, Spark context and client
        count instead of constructing fresh ones)."""
        kwargs.setdefault("spark_context", handler.sc)
        kwargs.setdefault("clients", handler.clients_per_partition)
        session = cls(handler.tgi, **kwargs)
        session.handler = handler
        return session

    # ------------------------------------------------------------------
    # fluent builder entry points
    # ------------------------------------------------------------------
    def at(self, t: TimePoint) -> "TimeView":
        """Queries anchored at one time point (snapshot, k-hop, state)."""
        return TimeView(self, t)

    def between(self, ts: TimePoint, te: TimePoint) -> "RangeView":
        """Queries over an interval (histories, neighborhood evolution)."""
        if te < ts:
            raise QueryError(f"empty interval [{ts}, {te}]")
        return RangeView(self, ts, te)

    def nodes(self, predicate=None) -> SON:
        """A lazy :class:`~repro.taf.son.SON` pre-bound to this session's
        handler; ``predicate`` (string or callable) is applied as a
        ``Select`` before fetch."""
        son = SON(self.handler)
        if predicate is not None:
            son = son.Select(predicate)
        return son

    def subgraphs(self, k: int = 1, predicate=None) -> SOTS:
        """A lazy :class:`~repro.taf.son.SOTS` of k-hop neighborhoods
        pre-bound to this session's handler."""
        sots = SOTS(k, self.handler)
        if predicate is not None:
            sots = sots.Select(predicate)
        return sots

    # ------------------------------------------------------------------
    # request pricing
    # ------------------------------------------------------------------
    def _safe_price(
        self, plan_or_keys, clients: int,
        shared_keys: Optional[Set] = None,
    ) -> Optional[float]:
        """Price a plan, or ``None`` when the cluster cannot route it.

        Pricing walks every replica set; with machines crashed (fault
        injection, real failover) a placement may have no live replica
        and :meth:`Cluster.plan_records` raises.  That must not kill the
        query at plan time — the resilient fetch path decides at fetch
        time whether the key recovers, reroutes, or degrades — so dead
        placements simply make the candidate unpriceable."""
        try:
            return price_plan(
                self.tgi.cluster, plan_or_keys, clients=clients,
                shared_keys=shared_keys,
            )
        except StorageError:
            return None

    def _khop_candidates(
        self, request: QueryRequest,
        shared_keys: Optional[Set] = None,
    ) -> Tuple[Dict[str, float], bool, Dict[str, List[str]]]:
        """Predicted sim-ms per candidate k-hop plan, whether the
        targeted bound could be planned at all (a single dead center
        can't — the caller then lets Algorithm 4 raise cleanly), and
        each candidate's planner notes (why a plan prices the way it
        does: stats bounds, checkpoint seedings, warm snapshots).

        ``shared_keys`` is the batched-execution shared-context discount
        (see :func:`~repro.index.tgi.planner.price_plan`): keys an
        already-chosen concurrent plan will fetch anyway price at zero."""
        assert request.t is not None
        clients = request.clients
        candidates: Dict[str, float] = {}
        notes: Dict[str, List[str]] = {}
        snap_plan = self.planner.plan_snapshot(request.t)
        snap_price = self._safe_price(
            snap_plan, clients, shared_keys=shared_keys
        )
        if snap_price is not None:
            candidates[ALGO_SNAPSHOT_FIRST] = snap_price
            notes[ALGO_SNAPSHOT_FIRST] = list(snap_plan.notes)
        per_center = 0.0
        union_keys: List = []
        union_seen = set()
        khop_notes: List[str] = []
        plannable = False
        priceable = True
        for center in dict.fromkeys(request.nodes):
            try:
                sub = self.planner.plan_khop(center, request.t, k=request.k)
            except IndexError_:
                continue
            plannable = True
            sub_price = self._safe_price(sub, clients, shared_keys=shared_keys)
            if sub_price is None:
                priceable = False
            else:
                per_center += sub_price
            if sub.expected_keys is not None:
                khop_notes.append(
                    f"center {center}: expected "
                    f"{len(sub.expected_keys)}/{sub.num_keys} keys"
                )
            for note in sub.notes:
                if note not in khop_notes:
                    khop_notes.append(note)
            for key in sub.pricing_keys():
                if key not in union_seen:
                    union_seen.add(key)
                    union_keys.append(key)
        if plannable:
            notes[ALGO_KHOP] = khop_notes
            if priceable and request.single:
                candidates[ALGO_KHOP] = per_center
            elif priceable:
                # the shared frontier fetches the per-center union once
                union_price = self._safe_price(
                    union_keys, clients, shared_keys=shared_keys
                )
                if union_price is not None:
                    candidates[ALGO_KHOP] = union_price
                candidates[ALGO_PER_CENTER] = per_center
                notes[ALGO_PER_CENTER] = list(khop_notes)
        return candidates, plannable, notes

    def _choose_khop(
        self, request: QueryRequest,
        shared_keys: Optional[Set] = None,
    ) -> Tuple[str, Dict[str, float], Dict[str, float], Dict[str, List[str]]]:
        """Resolve the algorithm for a k-hop request: forced choices pass
        through; ``auto`` takes the cheapest priced candidate (ties break
        toward the targeted bound, see :data:`_TIE_ORDER`), after the
        per-algorithm EWMA corrections learned from earlier queries.
        Returns the choice, the corrected candidate prices (what callers
        report), the raw model prices (what the feedback loop compares
        actuals against), and each candidate's planner notes."""
        raw, plannable, notes = self._khop_candidates(
            request, shared_keys=shared_keys
        )
        candidates = self._corrected(raw)
        if request.algorithm != ALGO_AUTO:
            chosen = request.algorithm
            if chosen == ALGO_PER_CENTER and request.single:
                chosen = ALGO_KHOP  # one center: the loop *is* Algorithm 4
            return self._trace_pricing(chosen, candidates, raw, notes)
        if not plannable or not candidates:
            # no alive center to bound (or no priceable candidate — dead
            # placements under fault injection): run Algorithm 4, which
            # raises (or degrades) without fetching a full snapshot
            return self._trace_pricing(
                ALGO_KHOP, candidates, raw, notes
            )
        chosen = min(
            candidates,
            key=lambda name: (candidates[name], _TIE_ORDER[name]),
        )
        return self._trace_pricing(chosen, candidates, raw, notes)

    def _trace_pricing(
        self,
        chosen: str,
        candidates: Dict[str, float],
        raw: Dict[str, float],
        notes: Dict[str, List[str]],
    ) -> Tuple[str, Dict[str, float], Dict[str, float], Dict[str, List[str]]]:
        """Attach a ``pricing`` span recording the candidate table and
        the choice (no-op unless this query is being traced)."""
        span = current_span()
        if span is not None:
            span.child(
                "pricing",
                chosen=chosen,
                candidates={k: round(v, 6) for k, v in candidates.items()},
                raw={k: round(v, 6) for k, v in raw.items()},
                corrections={
                    k: round(self._correction.get(k, 1.0), 6)
                    for k in candidates
                },
            ).end()
        return chosen, candidates, raw, notes

    def _predict(
        self, request: QueryRequest,
        shared_keys: Optional[Set] = None,
    ) -> Optional[float]:
        """Predicted cost for the non-k-hop kinds (single candidate)."""
        try:
            if request.kind == "snapshot":
                return price_plan(
                    self.tgi.cluster,
                    self.planner.plan_snapshot(request.t),
                    clients=request.clients,
                    shared_keys=shared_keys,
                )
            if request.kind in ("node_histories", "node_state"):
                ts = request.ts if request.kind == "node_histories" else request.t
                te = request.te if request.kind == "node_histories" else request.t
                return price_plan(
                    self.tgi.cluster,
                    self.planner.plan_node_histories(request.nodes, ts, te),
                    clients=request.clients,
                    shared_keys=shared_keys,
                )
        except (IndexError_, StorageError):
            # IndexError_: unknown node / time out of range — execution
            # raises the real error.  StorageError: a placement has no
            # live replica at plan time; the resilient fetch path decides
            # what happens, so pricing just abstains.
            return None
        return None  # khop_history: no metadata-only bound yet

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        request: QueryRequest,
        *,
        deadline_at: Optional[float] = None,
    ) -> QueryResult:
        """Price, select, and run one compiled request.

        ``deadline_at`` is an absolute instant on :attr:`clock`
        (monotonic seconds); when omitted it is derived from the
        request's ``deadline_ms`` budget, counted from now.  An expired
        deadline — at entry or between fetch rounds — raises
        :class:`~repro.api.DeadlineExceeded`.  Cancellation is
        cooperative: the executor checks between stages and scheduling
        rounds, never mid-``multiget``, so a fetch already issued to the
        store completes before the query aborts.

        With a :attr:`tracer` attached (and this query sampled), the
        whole execution runs under a root ``query`` span: pricing,
        stages, store rounds, apply lanes and resilience events nest
        beneath it, and the finished span carries the result's
        :class:`QueryStats` as attributes.
        """
        tracer = self.tracer
        if (
            tracer is None
            or current_span() is not None  # already inside a trace
            or not tracer.should_sample()
        ):
            return self._execute_with_deadline(request, deadline_at)
        with tracer.trace("query", kind=request.kind) as root:
            try:
                result = self._execute_with_deadline(request, deadline_at)
            except Exception as exc:
                root.set(error=type(exc).__name__)
                raise
            self._annotate_query_span(root, request, result)
        return result

    def _execute_with_deadline(
        self, request: QueryRequest, deadline_at: Optional[float]
    ) -> QueryResult:
        if deadline_at is None and request.deadline_ms is not None:
            deadline_at = self.clock() + request.deadline_ms / 1000.0
        if deadline_at is None:
            return self._dispatch(request)

        def check() -> None:
            if self.clock() > deadline_at:
                raise DeadlineExceeded(
                    f"deadline exceeded running {request.kind} query"
                )

        check()
        with cancel_scope(check):
            return self._dispatch(request)

    @staticmethod
    def _annotate_query_span(
        span: Span, request: QueryRequest, result: QueryResult
    ) -> None:
        """Project the result's stats onto its span: the span tree holds
        at least everything ``QueryStats`` reports, so the terminal
        counters are a view of the trace."""
        stats = result.stats
        span.set(
            kind=request.kind,
            algorithm=stats.algorithm,
            predicted_ms=stats.predicted_ms,
            candidates=stats.candidates,
            sim_time_ms=stats.sim_time_ms,
            requests=stats.requests,
            bytes=stats.bytes_read,
            rounds=stats.rounds,
            apply_ms=stats.apply_ms,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
            checkpoint_hits=stats.checkpoint_hits,
            checkpoint_misses=stats.checkpoint_misses,
            checkpoint_near_hits=stats.checkpoint_near_hits,
            decoded_events=stats.decoded_events,
            coalesced_hits=stats.coalesced_hits,
            merged_rounds=stats.merged_rounds,
            retries=stats.retries,
            hedges=stats.hedges,
            breaker_trips=stats.breaker_trips,
            backoff_ms=stats.backoff_ms,
            degraded_keys=stats.degraded_keys,
        )
        if result.error is not None:
            span.set(error=type(result.error).__name__)
        # the root's sim window is the query's makespan by construction,
        # so the exported trace reconciles with QueryStats.sim_time_ms
        span.set_sim(0.0, stats.sim_time_ms or 0.0)

    def _dispatch(self, request: QueryRequest) -> QueryResult:
        collector = PartialCollector() if request.allow_partial else None
        with partial_scope(collector):
            if request.kind == "khop":
                result = self._execute_khop(request)
            else:
                result = self._execute_simple(request)
        if collector is not None:
            self._fold_degraded(result, collector)
        self.last_result = result
        self._record_totals(request.kind, result.stats)
        return result

    @staticmethod
    def _fold_degraded(
        result: QueryResult, collector: PartialCollector
    ) -> None:
        """Record what an ``allow_partial`` request's collector caught:
        the dropped partitions land on both the stats and the result's
        ``degraded`` block.  A fault-free run leaves both untouched, so
        ``degraded is None`` still means the payload is complete."""
        if not collector.degraded:
            return
        partitions = sorted(
            set(result.stats.degraded_partitions) | collector.partitions
        )
        keys = max(result.stats.degraded_keys, len(collector.keys))
        result.stats.degraded_partitions = partitions
        result.stats.degraded_keys = keys
        result.degraded = {"keys": keys, "partitions": partitions}

    def batch(self, coalesce: Optional[bool] = None) -> "Batch":
        """A deferred multi-query builder: the same fluent ``at`` /
        ``between`` views queue requests instead of running them, and
        :meth:`Batch.run` executes the whole set through one shared,
        coalesced timeline (see :meth:`execute_batch`)."""
        return Batch(self, coalesce=coalesce)

    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        coalesce: Optional[bool] = None,
        *,
        capture_errors: bool = False,
        deadline_ats: Optional[Sequence[Optional[float]]] = None,
    ) -> List[QueryResult]:
        """Price and run several requests through one shared execution.

        Each request is priced and its algorithm chosen exactly as
        :meth:`execute` would — except later requests see the
        **shared-context discount**: keys an already-chosen concurrent
        plan will fetch anyway price at zero, because coalesced execution
        fetches them once.  All chosen plans then run through a single
        ``execute_many`` with coalescing on: keys needed by several
        requests are fetched once (single-flight dedup) and same-window
        fetches to the store merge into one multiget round.

        Returns one :class:`QueryResult` per request, in input order,
        with values member-identical to a serial :meth:`execute` loop.
        Each result's :class:`QueryStats` attributes shared work fairly:
        a row fetched for ``n`` requests contributes ``1/n`` of a request
        and ``stored_bytes/n`` bytes to each, so the per-request shares
        sum exactly to the deduplicated totals; ``coalesced_hits`` /
        ``merged_rounds`` surface how much sharing happened.

        ``coalesce=False`` (or an index built with
        ``TGIConfig(coalesce=False)``) is the escape hatch: the batch
        degenerates to a serial ``execute`` loop with bit-identical
        accounting.  ``khop_history`` requests (no composable plan form
        yet) always run serially, before their results slot back into
        input order.  The per-algorithm EWMA correction is *not* updated
        from batched runs — coalesced actuals reflect shared work and
        would mistrain the standalone predictions.

        ``capture_errors=True`` turns per-request failures (bad plans,
        dead nodes at assembly, expired deadlines) into
        :class:`QueryResult` slots carrying ``error`` instead of raising
        — the serving path uses this so one bad request in a window
        cannot take down its batchmates.  ``deadline_ats`` supplies
        absolute per-request deadlines on :attr:`clock` (e.g. measured
        from HTTP admission so collector queue time counts against the
        budget); unset slots fall back to each request's
        ``deadline_ms``.  Shared execution is cancelled mid-flight only
        when *every* plan-participating request carries a deadline —
        otherwise an unbounded request keeps the batch alive and late
        requests expire at their assembly check.
        """
        requests = list(requests)
        tracer = self.tracer
        if (
            tracer is None
            or current_span() is not None
            or not tracer.should_sample()
        ):
            return self._execute_batch_inner(
                requests, coalesce,
                capture_errors=capture_errors, deadline_ats=deadline_ats,
            )
        with tracer.trace("batch", size=len(requests)) as root:
            try:
                results = self._execute_batch_inner(
                    requests, coalesce,
                    capture_errors=capture_errors, deadline_ats=deadline_ats,
                )
            except Exception as exc:
                root.set(error=type(exc).__name__)
                raise
            sim_end = 0.0
            for i, (request, result) in enumerate(zip(requests, results)):
                q = root.child("query", lane=f"query-{i}")
                self._annotate_query_span(q, request, result)
                q.end()
                sim_end = max(sim_end, result.stats.sim_time_ms or 0.0)
            root.set(sim_time_ms=sim_end)
            root.set_sim(0.0, sim_end)
        return results

    def _execute_batch_inner(
        self,
        requests: List[QueryRequest],
        coalesce: Optional[bool] = None,
        *,
        capture_errors: bool = False,
        deadline_ats: Optional[Sequence[Optional[float]]] = None,
    ) -> List[QueryResult]:
        now = self.clock()
        if deadline_ats is None:
            deadlines: List[Optional[float]] = [None] * len(requests)
        else:
            deadlines = list(deadline_ats)
            if len(deadlines) != len(requests):
                raise ValueError(
                    "deadline_ats length must match requests length"
                )
        for i, request in enumerate(requests):
            if deadlines[i] is None and request.deadline_ms is not None:
                deadlines[i] = now + request.deadline_ms / 1000.0

        def error_result(
            request: QueryRequest, exc: Exception
        ) -> QueryResult:
            return QueryResult(request, None, QueryStats(), error=exc)

        def guarded(
            request: QueryRequest, deadline_at: Optional[float]
        ) -> QueryResult:
            try:
                return self.execute(request, deadline_at=deadline_at)
            except Exception as exc:
                if not capture_errors:
                    raise
                return error_result(request, exc)

        def expired(i: int) -> bool:
            return deadlines[i] is not None and self.clock() > deadlines[i]

        do_coalesce = (
            self.tgi.config.coalesce if coalesce is None else coalesce
        )
        if not do_coalesce or len(requests) < 2:
            return [
                guarded(request, deadline)
                for request, deadline in zip(requests, deadlines)
            ]
        shared: Set = set()
        specs: List[Optional[_BatchSpec]] = []
        plans: List[Any] = []
        errors: List[Optional[QueryResult]] = [None] * len(requests)
        for i, request in enumerate(requests):
            if expired(i):
                exc: Exception = DeadlineExceeded(
                    f"deadline exceeded before planning {request.kind} query"
                )
                if not capture_errors:
                    raise exc
                errors[i] = error_result(request, exc)
                specs.append(None)
                continue
            try:
                spec = self._plan_batched(request, shared)
            except Exception as exc:
                if not capture_errors:
                    raise
                errors[i] = error_result(request, exc)
                spec = None
            if spec is not None:
                spec.first = len(plans)
                plans.extend(spec.plans)
            specs.append(spec)
        if len(plans) < 2:
            # nothing to coalesce across (e.g. all-khop_history batch)
            return [
                errors[i] if errors[i] is not None
                else guarded(requests[i], deadlines[i])
                for i in range(len(requests))
            ]
        clients = max(request.clients for request in requests)
        # cancel shared execution only when every participant is
        # deadline-bounded: the latest deadline is the first instant at
        # which *no* batchmate can still use the remaining fetches
        live_deadlines = [
            deadlines[i]
            for i in range(len(requests))
            if specs[i] is not None
        ]
        batch_deadline = (
            max(live_deadlines)
            if live_deadlines and all(d is not None for d in live_deadlines)
            else None
        )
        # A shared-window collector keeps one request's dead partitions
        # from killing its batchmates: the resilient fetch drops the
        # unreachable keys instead of raising, and each request settles
        # its own fate at finalize time — allow_partial requests fold
        # the drop into a degraded result, strict ones hit the missing
        # rows and fail (captured per-request when capture_errors).
        window_collector = (
            PartialCollector()
            if capture_errors
            or any(request.allow_partial for request in requests)
            else None
        )
        try:
            with partial_scope(window_collector):
                if batch_deadline is not None:
                    def batch_check() -> None:
                        if self.clock() > batch_deadline:
                            raise DeadlineExceeded(
                                "deadline exceeded during shared batch"
                                " execution"
                            )

                    with cancel_scope(batch_check):
                        pipe = self.tgi.executor.execute_many(
                            plans, clients=clients,
                            pipelined=True, coalesce=True,
                        )
                else:
                    pipe = self.tgi.executor.execute_many(
                        plans, clients=clients, pipelined=True,
                        coalesce=True,
                    )
        except DeadlineExceeded as exc:
            if not capture_errors:
                raise
            return [
                errors[i] if errors[i] is not None
                else guarded(requests[i], deadlines[i])
                if specs[i] is None
                else error_result(requests[i], exc)
                for i in range(len(requests))
            ]
        except StorageError:
            # the shared window died as a whole (e.g. a transient fault
            # on the plain fetch path, which has no per-key drop form);
            # fall back to fault-isolated serial execution so only the
            # requests that actually depend on the dead machine fail
            if not capture_errors:
                raise
            return [
                errors[i] if errors[i] is not None
                else guarded(requests[i], deadlines[i])
                for i in range(len(requests))
            ]
        report = pipe.coalesce
        out: List[QueryResult] = []
        for i, (request, spec) in enumerate(zip(requests, specs)):
            if errors[i] is not None:
                out.append(errors[i])
                continue
            if spec is None:
                out.append(guarded(request, deadlines[i]))
                continue
            if expired(i):
                exc = DeadlineExceeded(
                    f"deadline exceeded assembling {request.kind} query"
                )
                if not capture_errors:
                    raise exc
                out.append(error_result(request, exc))
                continue
            decoded0 = decoded_events_total()
            # finalize under the request's own collector: allow_partial
            # requests absorb missing rows as a degraded result; strict
            # requests run scope-less so a dropped partition raises a
            # typed PartitionUnavailable into their error slot
            req_collector = (
                PartialCollector() if request.allow_partial else None
            )
            try:
                with partial_scope(req_collector):
                    finalized = [
                        finalize(pipe.results[spec.first + j].values)
                        for j, finalize in enumerate(spec.finalizes)
                    ]
                    value = spec.assemble(finalized)
            except Exception as exc:
                if not capture_errors:
                    raise
                out.append(error_result(request, exc))
                continue
            decoded = decoded_events_total() - decoded0
            span = range(spec.first, spec.first + len(spec.plans))
            fetch = FetchStats()
            completion = 0.0
            for idx in span:
                fetch.merge(pipe.results[idx].stats)
                completion = max(
                    completion, pipe.results[idx].stats.sim_time_ms
                )
            stats = QueryStats.from_fetch(
                fetch,
                algorithm=spec.algorithm,
                predicted_ms=spec.predicted,
                candidates=spec.candidates,
            )
            # the request completes when its last plan does on the shared
            # timeline (merge() summed the per-plan completion instants)
            stats.sim_time_ms = completion
            if report is not None:
                stats.requests = sum(
                    report.fair_requests[idx] for idx in span
                )
                stats.bytes_read = sum(
                    report.fair_bytes[idx] for idx in span
                )
            for ckpt in spec.ckpts:
                stats.checkpoint_hits += ckpt["hits"]
                stats.checkpoint_misses += ckpt["misses"]
                stats.checkpoint_near_hits += ckpt["near_hits"]
            stats.decoded_events += decoded
            result = QueryResult(request, value, stats)
            if req_collector is not None:
                self._fold_degraded(result, req_collector)
            self._record_totals(request.kind, stats)
            out.append(result)
        if out:
            self.last_result = out[-1]
        return out

    def _plan_batched(
        self, request: QueryRequest, shared: Set
    ) -> Optional[_BatchSpec]:
        """Compile one request into exec plan(s) plus a reassembly
        recipe, pricing candidates with the shared-context discount and
        folding the chosen plan's pricing keys into ``shared`` for the
        batch members planned after it.  Returns ``None`` for kinds the
        batched path cannot compose (``khop_history``)."""
        tgi = self.tgi
        if request.kind == "khop_history":
            return None
        if request.kind == "khop":
            chosen, candidates, _raw, _notes = self._choose_khop(
                request, shared_keys=shared
            )
            t, k = request.t, request.k
            nodes = list(request.nodes)
            if chosen == ALGO_SNAPSHOT_FIRST:
                plan, fin, ckpt = tgi._snapshot_exec_plan(t)
                plans, finalizes, ckpts = [plan], [fin], [ckpt]

                def assemble(outs, nodes=nodes, single=request.single):
                    g = outs[0]
                    if single:
                        if not g.has_node(nodes[0]):
                            raise IndexError_(
                                f"node {nodes[0]} not alive at t={t}"
                            )
                        return g.khop_subgraph(nodes[0], k)
                    return [
                        g.khop_subgraph(c, k) if g.has_node(c) else None
                        for c in nodes
                    ]
            elif chosen == ALGO_PER_CENTER and not request.single:
                # fetch each *distinct* center as its own plan (matching
                # how the candidate was priced); coalescing dedups the
                # partitions the neighborhoods share
                plans, finalizes, ckpts = [], [], []
                order = list(dict.fromkeys(nodes))
                for center in order:
                    plan, fin, ckpt = tgi._khops_plan([center], t, k)
                    plans.append(plan)
                    finalizes.append(fin)
                    ckpts.append(ckpt)

                def assemble(outs, order=order, nodes=nodes):
                    graphs = {c: outs[i][0] for i, c in enumerate(order)}
                    return [graphs[c] for c in nodes]
            else:  # shared-frontier Algorithm 4 (or a forced per-center
                #    on a single center, which is the same loop)
                chosen = ALGO_KHOP
                plan, fin, ckpt = tgi._khops_plan(nodes, t, k)
                plans, finalizes, ckpts = [plan], [fin], [ckpt]

                def assemble(outs, nodes=nodes, single=request.single):
                    if not single:
                        return outs[0]
                    g = outs[0][0]
                    if g is None:
                        raise IndexError_(
                            f"node {nodes[0]} not alive at t={t}"
                        )
                    return g

            shared.update(self._shared_pricing_keys(request, chosen))
            return _BatchSpec(
                plans=plans, finalizes=finalizes, ckpts=ckpts,
                assemble=assemble, algorithm=chosen,
                predicted=candidates.get(chosen), candidates=candidates,
            )
        predicted_raw = self._predict(request, shared_keys=shared)
        if request.kind == "snapshot":
            algorithm = "snapshot"
            plan, fin, ckpt = tgi._snapshot_exec_plan(request.t)

            def assemble(outs):
                return outs[0]
        else:  # node_histories / node_state
            algorithm = (
                "batched-histories" if request.kind == "node_histories"
                else "micro-delta"
            )
            ts = request.ts if request.kind == "node_histories" else request.t
            te = request.te if request.kind == "node_histories" else request.t
            plan, fin, ckpt = tgi._node_histories_plan(
                list(request.nodes), ts, te
            )
            if request.kind == "node_state":
                def assemble(outs):
                    return outs[0][0].initial
            elif request.single:
                def assemble(outs):
                    return outs[0][0]
            else:
                def assemble(outs):
                    return outs[0]
        predicted = (
            predicted_raw * self._correction.get(algorithm, 1.0)
            if predicted_raw is not None
            else None
        )
        shared.update(self._shared_pricing_keys(request, algorithm))
        return _BatchSpec(
            plans=[plan], finalizes=[fin], ckpts=[ckpt],
            assemble=assemble, algorithm=algorithm, predicted=predicted,
            candidates=(
                {algorithm: predicted} if predicted is not None else {}
            ),
        )

    def _shared_pricing_keys(
        self, request: QueryRequest, chosen: str
    ) -> Set:
        """The keys a chosen plan will fetch, as later batch members
        should discount them when pricing their own candidates."""
        try:
            if request.kind == "snapshot" or chosen == ALGO_SNAPSHOT_FIRST:
                return set(
                    self.planner.plan_snapshot(request.t).pricing_keys()
                )
            if request.kind in ("node_histories", "node_state"):
                ts = (
                    request.ts if request.kind == "node_histories"
                    else request.t
                )
                te = (
                    request.te if request.kind == "node_histories"
                    else request.t
                )
                return set(
                    self.planner.plan_node_histories(
                        request.nodes, ts, te
                    ).pricing_keys()
                )
            if request.kind == "khop":
                keys: Set = set()
                for center in dict.fromkeys(request.nodes):
                    try:
                        sub = self.planner.plan_khop(
                            center, request.t, k=request.k
                        )
                    except IndexError_:
                        continue
                    keys.update(sub.pricing_keys())
                return keys
        except IndexError_:
            pass
        return set()

    def _execute_simple(self, request: QueryRequest) -> QueryResult:
        tgi = self.tgi
        predicted_raw = self._predict(request)
        algorithm = {
            "snapshot": "snapshot",
            "node_state": "micro-delta",
            "node_histories": "batched-histories",
            "khop_history": "khop-history",
        }[request.kind]
        if request.kind == "snapshot":
            value = tgi.get_snapshot(request.t, clients=request.clients)
        elif request.kind == "node_state":
            value = tgi.get_node_state(
                request.nodes[0], request.t, clients=request.clients
            )
        elif request.kind == "node_histories":
            histories = tgi.get_node_histories(
                list(request.nodes), request.ts, request.te,
                clients=request.clients,
            )
            value = histories[0] if request.single else histories
        else:  # khop_history
            value = tgi.get_khop_history(
                request.nodes[0], request.ts, request.te,
                clients=request.clients,
            )
        predicted = (
            predicted_raw * self._correction.get(algorithm, 1.0)
            if predicted_raw is not None
            else None
        )
        self._observe(
            algorithm, predicted_raw, tgi.last_fetch_stats.sim_time_ms
        )
        stats = QueryStats.from_fetch(
            tgi.last_fetch_stats,
            algorithm=algorithm,
            predicted_ms=predicted,
            candidates={algorithm: predicted} if predicted is not None else {},
        )
        return QueryResult(request, value, stats)

    def _execute_khop(self, request: QueryRequest) -> QueryResult:
        tgi = self.tgi
        chosen, candidates, raw, _notes = self._choose_khop(request)
        t, k, clients = request.t, request.k, request.clients
        if chosen == ALGO_KHOP:
            if request.single:
                value = tgi.get_khop(request.nodes[0], t, k=k,
                                     clients=clients)
            else:
                value = tgi.get_khops(list(request.nodes), t, k=k,
                                      clients=clients)
            fetch = tgi.last_fetch_stats
        elif chosen == ALGO_PER_CENTER:
            # fetch each *distinct* center once (matching how the
            # candidate was priced); duplicate inputs share the result
            fetch = FetchStats()
            graphs: Dict[NodeId, Optional[Graph]] = {}
            for center in dict.fromkeys(request.nodes):
                try:
                    graphs[center] = tgi.get_khop(center, t, k=k,
                                                  clients=clients)
                except IndexError_:
                    graphs[center] = None
                fetch.merge(tgi.last_fetch_stats)
            value = [graphs[center] for center in request.nodes]
        elif chosen == ALGO_SNAPSHOT_FIRST:
            if request.single:
                value = tgi.get_khop_snapshot_first(
                    request.nodes[0], t, k=k, clients=clients
                )
            else:
                g = tgi.get_snapshot(t, clients=clients)
                value = [
                    g.khop_subgraph(center, k) if g.has_node(center) else None
                    for center in request.nodes
                ]
            fetch = tgi.last_fetch_stats
        else:
            raise QueryError(f"unknown k-hop algorithm {chosen!r}")
        self._observe(chosen, raw.get(chosen), fetch.sim_time_ms)
        stats = QueryStats.from_fetch(
            fetch,
            algorithm=chosen,
            predicted_ms=candidates.get(chosen),
            candidates=candidates,
        )
        return QueryResult(request, value, stats)

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------
    def explain(self, request: QueryRequest) -> str:
        """The retrieval plan and its cost estimate, without fetching.

        For k-hop requests the output also lists every candidate's
        predicted cost and which one ``auto`` would pick; for pipelined
        indexes it appends the executor's round timeline.
        """
        chosen: Optional[str] = None
        candidates: Dict[str, float] = {}
        candidate_notes: Dict[str, List[str]] = {}
        if request.kind == "snapshot":
            plan = self.planner.plan_snapshot(request.t)
        elif request.kind == "node_state":
            plan = self.planner.plan_node_history(
                request.nodes[0], request.t, request.t
            )
        elif request.kind == "node_histories":
            if request.single:
                plan = self.planner.plan_node_history(
                    request.nodes[0], request.ts, request.te
                )
            else:
                plan = self.planner.plan_node_histories(
                    request.nodes, request.ts, request.te
                )
        elif request.kind == "khop_history":
            plan = self.planner.plan_node_history(
                request.nodes[0], request.ts, request.te
            )
        elif request.kind == "khop":
            chosen, candidates, _raw, candidate_notes = (
                self._choose_khop(request)
            )
            if chosen == ALGO_SNAPSHOT_FIRST:
                plan = self.planner.plan_snapshot(request.t)
            elif request.single:
                plan = self.planner.plan_khop(
                    request.nodes[0], request.t, k=request.k
                )
            else:
                plan = self.planner.plan_khops(
                    request.nodes, request.t, k=request.k
                )
        else:
            raise QueryError(f"cannot explain query kind {request.kind!r}")

        lines = [plan.explain()]
        records = self.tgi.cluster.plan_records(
            plan.pricing_keys(), clients=request.clients
        )
        est = price_plan(self.tgi.cluster, plan, clients=request.clients)
        lines.append(
            f"estimate: {len(records)} requests, "
            f"~{est:.2f} sim-ms as one sequential round"
        )
        if candidates:
            ranked = ", ".join(
                f"{name}={ms:.2f} sim-ms"
                for name, ms in sorted(candidates.items(),
                                       key=lambda kv: kv[1])
            )
            lines.append(f"candidates: {ranked} -> {chosen}")
            # per-candidate verdicts: why each plan priced as it did and,
            # for the losers, the margin it was rejected on
            best = candidates.get(chosen)
            for name, ms in sorted(candidates.items(),
                                   key=lambda kv: kv[1]):
                if name == chosen:
                    verdict = "chosen"
                elif best is not None:
                    verdict = f"rejected (+{ms - best:.2f} sim-ms vs {chosen})"
                else:
                    verdict = "rejected"
                lines.append(f"  - {name}: {ms:.2f} sim-ms — {verdict}")
                for note in candidate_notes.get(name, []):
                    lines.append(f"      note: {note}")
        if self.tgi.config.pipeline:
            lines.append(self._timeline_estimate(plan, request.clients))
        return "\n".join(lines)

    def _timeline_estimate(self, plan, clients: int) -> str:
        """Group the plan's steps into the multiget rounds the executor
        would issue (chained steps depend on round-1 data, so they form a
        second round) and lay them on an :class:`ExecutionTimeline` —
        overlap accrues only across concurrent plans, never within one
        query's dependency chain.  Plans carrying a statistics-backed
        expected key set are laid out over that set, so the timeline
        agrees with the printed estimate rather than the worst-case
        sound bound."""
        pricing = (
            set(plan.expected_keys)
            if getattr(plan, "expected_keys", None) is not None
            else None
        )
        first_round: List = []
        chained_round: List = []
        for step in plan.steps:
            target = chained_round if step.chained else first_round
            target.extend(
                key for key in step.keys
                if pricing is None or key in pricing
            )
        timeline = ExecutionTimeline(self.tgi.cluster.config.cost_model)
        at = 0.0
        for keys in (first_round, chained_round):
            if not keys:
                continue
            timing = timeline.submit(
                self.tgi.cluster.plan_records(keys, clients=clients), at=at
            )
            at = timing.completed_ms
        return timeline.describe()


@dataclass(frozen=True)
class TimeView:
    """Queries anchored at one time point (``session.at(t)``); terminal
    methods compile a :class:`QueryRequest` and execute it — nothing is
    planned or fetched until then.  Bound to a :class:`Batch` instead of
    a session, the terminals queue the request and return its position
    in the batch."""

    session: Union[GraphSession, "Batch"]
    t: TimePoint

    def _clients(self, clients: Optional[int]) -> int:
        return clients if clients is not None else self.session.clients

    def snapshot(self, clients: Optional[int] = None) -> QueryResult:
        """Algorithm 1: the whole graph as of ``t``."""
        return self.session.execute(QueryRequest(
            kind="snapshot", t=self.t, clients=self._clients(clients),
        ))

    def khop(
        self,
        center: Union[NodeId, Sequence[NodeId]],
        k: int = 1,
        algorithm: str = ALGO_AUTO,
        clients: Optional[int] = None,
    ) -> QueryResult:
        """k-hop neighborhood(s) at ``t``.

        A scalar ``center`` yields one :class:`~repro.graph.static.Graph`
        (raising if the node is dead, matching ``TGI.get_khop``); a
        sequence yields one graph-or-``None`` per center.  ``algorithm``
        picks Algorithm 3 vs 4 (and per-center vs shared-frontier) —
        ``auto`` defers to plan pricing.
        """
        # node ids are scalars (ints); anything iterable — list, tuple,
        # set, range, generator — is a population of centers
        single = not hasattr(center, "__iter__")
        nodes = (center,) if single else tuple(center)
        return self.session.execute(QueryRequest(
            kind="khop", t=self.t, nodes=nodes, k=k,
            algorithm=algorithm, clients=self._clients(clients),
            single=single,
        ))

    def node_state(
        self, node: NodeId, clients: Optional[int] = None
    ) -> QueryResult:
        """One node's static state at ``t`` (``None`` when not alive)."""
        return self.session.execute(QueryRequest(
            kind="node_state", t=self.t, nodes=(node,),
            clients=self._clients(clients), single=True,
        ))


@dataclass(frozen=True)
class RangeView:
    """Interval queries (``session.between(ts, te)``); bound to a
    :class:`Batch`, the terminals queue instead of executing."""

    session: Union[GraphSession, "Batch"]
    ts: TimePoint
    te: TimePoint

    def _clients(self, clients: Optional[int]) -> int:
        return clients if clients is not None else self.session.clients

    def node_history(
        self, node: NodeId, clients: Optional[int] = None
    ) -> QueryResult:
        """Algorithm 2: one node's evolution over ``[ts, te]``."""
        return self.session.execute(QueryRequest(
            kind="node_histories", ts=self.ts, te=self.te, nodes=(node,),
            clients=self._clients(clients), single=True,
        ))

    def node_histories(
        self, nodes: Sequence[NodeId], clients: Optional[int] = None
    ) -> QueryResult:
        """Batched Algorithm 2 over a node population (O(1) rounds)."""
        return self.session.execute(QueryRequest(
            kind="node_histories", ts=self.ts, te=self.te,
            nodes=tuple(nodes), clients=self._clients(clients),
        ))

    def khop_history(
        self, center: NodeId, clients: Optional[int] = None
    ) -> QueryResult:
        """Algorithm 5: 1-hop neighborhood evolution around ``center``."""
        return self.session.execute(QueryRequest(
            kind="khop_history", ts=self.ts, te=self.te, nodes=(center,),
            clients=self._clients(clients), single=True,
        ))

    def nodes(self, predicate=None) -> SON:
        """A pre-bound lazy SoN already timesliced to ``[ts, te]``."""
        return self.session.nodes(predicate).Timeslice(self.ts, self.te)

    def subgraphs(self, k: int = 1, predicate=None) -> SOTS:
        """A pre-bound lazy SoTS already timesliced to ``[ts, te]``."""
        return self.session.subgraphs(k, predicate).Timeslice(
            self.ts, self.te
        )


class Batch:
    """Deferred multi-query builder (``session.batch()``).

    Duck-types the slice of the session interface the fluent views use
    (``execute`` and ``clients``), so the same :class:`TimeView` /
    :class:`RangeView` terminals *queue* compiled requests instead of
    running them — each terminal returns the request's position in the
    batch, which indexes the :meth:`run` result list::

        batch = open_graph("wiki.hgs").batch()
        i = batch.at(900).khop(17, k=2)       # queued, returns 0
        j = batch.at(900).snapshot()          # queued, returns 1
        results = batch.run()                 # one shared coalesced
        hood = results[i].value               # execution for all of them

    ``run`` hands the queue to :meth:`GraphSession.execute_batch`; the
    batch stays reusable afterwards (``requests`` keeps the queue —
    ``clear`` resets it).
    """

    def __init__(
        self, session: GraphSession, coalesce: Optional[bool] = None
    ) -> None:
        self.session = session
        self.clients = session.clients
        self.coalesce = coalesce
        self.requests: List[QueryRequest] = []

    def at(self, t: TimePoint) -> TimeView:
        """Queue point-in-time queries (terminals return queue positions)."""
        return TimeView(self, t)

    def between(self, ts: TimePoint, te: TimePoint) -> RangeView:
        """Queue interval queries (terminals return queue positions)."""
        if te < ts:
            raise QueryError(f"empty interval [{ts}, {te}]")
        return RangeView(self, ts, te)

    def add(self, request: QueryRequest) -> "Batch":
        """Queue an already-compiled request; chains."""
        self.requests.append(request)
        return self

    def execute(self, request: QueryRequest) -> int:
        """View-terminal hook: queue the compiled request and return its
        position in the batch (not a result — ``run`` produces those)."""
        self.requests.append(request)
        return len(self.requests) - 1

    def clear(self) -> "Batch":
        """Drop the queued requests; chains."""
        self.requests = []
        return self

    def __len__(self) -> int:
        return len(self.requests)

    def run(self) -> List[QueryResult]:
        """Execute every queued request through one shared, coalesced
        timeline; returns one :class:`QueryResult` per request, in queue
        order."""
        return self.session.execute_batch(
            self.requests, coalesce=self.coalesce
        )
