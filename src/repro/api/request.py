"""Compiled query requests.

A :class:`QueryRequest` is the declarative form every fluent-builder
terminal compiles to before anything touches the store: the query kind,
its time scope, its subject nodes, and the algorithm policy.  Keeping the
request first-class means the same object can be priced
(``GraphSession.explain``), executed (``GraphSession.execute``), and
reported back on the :class:`~repro.api.result.QueryResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import QueryError
from repro.types import NodeId, TimePoint

#: Cost-based selection: pick whichever candidate plan prices cheapest.
ALGO_AUTO = "auto"
#: Algorithm 3 — fetch the whole snapshot, filter to k hops client-side.
ALGO_SNAPSHOT_FIRST = "snapshot-first"
#: Algorithm 4 — targeted micro-delta expansion (shared-frontier
#: :meth:`~repro.index.tgi.index.TGI.get_khops` for multi-center requests).
ALGO_KHOP = "khop"
#: Algorithm 4 run as a strictly per-center loop (no frontier sharing).
ALGO_PER_CENTER = "khop-per-center"

ALGORITHMS = (ALGO_AUTO, ALGO_SNAPSHOT_FIRST, ALGO_KHOP, ALGO_PER_CENTER)

#: Request kinds the session knows how to price and execute.
KINDS = (
    "snapshot",
    "khop",
    "node_state",
    "node_histories",
    "khop_history",
)


@dataclass(frozen=True)
class QueryRequest:
    """One retrieval, compiled from the fluent builder.

    Attributes:
        kind: one of :data:`KINDS`.
        t: query time point (snapshot / khop / node_state).
        ts, te: interval bounds (node_histories / khop_history).
        nodes: subject node ids — k-hop centers or history targets.
        k: neighborhood radius for k-hop kinds.
        algorithm: one of :data:`ALGORITHMS`; only meaningful for
            ``khop`` requests, where ``auto`` defers the Algorithm 3 vs 4
            choice to plan pricing.
        clients: parallel fetch clients for the store rounds.
        single: the builder took a scalar subject, so the payload is the
            bare value rather than a list (``khop(5)`` vs ``khop([5, 7])``).
        deadline_ms: optional wall-clock budget for the whole request,
            measured from when the execution path first sees it (for
            served requests: from HTTP admission, so time queued in a
            batching window counts).  An expired request stops between
            executor stages and surfaces as a structured
            :class:`~repro.api.wire.DeadlineExceeded` instead of a
            partial result.  ``None`` (the default) means no deadline.
        allow_partial: opt in to degraded results.  When the store cannot
            reach some partitions even after the resilience policy is
            exhausted, the query returns whatever could be assembled and
            names the dropped partitions in
            :attr:`~repro.api.result.QueryResult.degraded` instead of
            raising :class:`~repro.errors.PartitionUnavailable`.
    """

    kind: str
    t: Optional[TimePoint] = None
    ts: Optional[TimePoint] = None
    te: Optional[TimePoint] = None
    nodes: Tuple[NodeId, ...] = field(default=())
    k: int = 1
    algorithm: str = ALGO_AUTO
    clients: int = 1
    single: bool = False
    deadline_ms: Optional[float] = None
    allow_partial: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise QueryError(f"unknown query kind {self.kind!r}")
        if self.algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {self.algorithm!r} "
                f"(choose from {', '.join(ALGORITHMS)})"
            )
        if self.k < 1:
            raise QueryError("neighborhood radius k must be >= 1")
        if self.clients < 1:
            raise QueryError("need at least one fetch client")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise QueryError("deadline_ms must be positive when set")

    def describe(self) -> str:
        """One-line summary used by EXPLAIN output and reprs."""
        if self.kind == "snapshot":
            return f"snapshot(t={self.t})"
        if self.kind == "node_state":
            return f"node_state(node={self.nodes[0]}, t={self.t})"
        if self.kind == "khop":
            subject = (
                str(self.nodes[0]) if self.single
                else f"{len(self.nodes)} centers"
            )
            return (
                f"khop({subject}, t={self.t}, k={self.k}, "
                f"algorithm={self.algorithm})"
            )
        if self.kind == "khop_history":
            return (
                f"khop_history(center={self.nodes[0]}, "
                f"ts={self.ts}, te={self.te})"
            )
        subject = (
            str(self.nodes[0]) if self.single else f"{len(self.nodes)} nodes"
        )
        return f"node_histories({subject}, ts={self.ts}, te={self.te})"
