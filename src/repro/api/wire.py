"""Wire schema of the query API: specs, payloads, and structured errors.

One request/response shape shared by every transport: the CLI's ``hgs
query --batch`` JSON-lines mode and the HTTP service's ``POST /query``
both parse *specs* (plain JSON objects) into
:class:`~repro.api.request.QueryRequest` via :func:`request_from_spec`,
and both render executed results back to JSON via :func:`result_payload`.
Keeping the translation here — instead of inside ``cli.py`` where it
started — is what lets a service client replay a ``--batch`` file
verbatim and get byte-identical payload keys back.

Failures cross the wire as **structured errors**, never tracebacks::

    {"error": {"code": "deadline_exceeded",
               "message": "...", "retryable": true}}

:class:`ServiceError` is the carrier: every subclass fixes a stable
``code`` and the HTTP status the service maps it to, and
:func:`error_payload` folds domain errors (:class:`~repro.errors.QueryError`,
:class:`~repro.errors.IndexError_`) into the same shape so a malformed
spec and a dead k-hop center are as structured as a rate-limit rejection.
:func:`error_from_payload` is the client-side inverse.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.api.request import ALGO_AUTO, QueryRequest
from repro.api.result import QueryResult
from repro.errors import HGSError, IndexError_, QueryError, StorageError


class ServiceError(HGSError):
    """A failure with a stable wire shape (``code`` / ``message`` /
    ``retryable``) and an HTTP status for the service layer.

    ``retry_after`` (seconds) rides along on throttling/backpressure
    errors and becomes the HTTP ``Retry-After`` header.
    """

    code = "internal"
    http_status = 500
    retryable = False

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        http_status: Optional[int] = None,
        retryable: Optional[bool] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        if code is not None:
            self.code = code
        if http_status is not None:
            self.http_status = http_status
        if retryable is not None:
            self.retryable = retryable
        self.retry_after = retry_after

    def to_payload(self) -> Dict[str, Any]:
        """The wire shape: ``{"error": {code, message, retryable}}``."""
        err: Dict[str, Any] = {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }
        if self.retry_after is not None:
            err["retry_after_s"] = round(self.retry_after, 3)
        return {"error": err}


class BadRequest(ServiceError):
    """Malformed spec: unknown kind, missing field, bad JSON."""

    code = "bad_request"
    http_status = 400


class Unauthorized(ServiceError):
    """Auth middleware rejected the request."""

    code = "unauthorized"
    http_status = 401


class NotFound(ServiceError):
    """Unknown route, or a query subject outside the indexed history."""

    code = "not_found"
    http_status = 404


class RateLimited(ServiceError):
    """Per-caller token bucket is empty; retry after ``retry_after``."""

    code = "rate_limited"
    http_status = 429
    retryable = True


class Overloaded(ServiceError):
    """Load shedding: the pending-request queue is full."""

    code = "overloaded"
    http_status = 503
    retryable = True


class Draining(ServiceError):
    """The service received SIGTERM and is flushing open windows; it
    accepts no new queries but completes the ones already admitted."""

    code = "draining"
    http_status = 503
    retryable = True


class DeadlineExceeded(ServiceError):
    """The request's ``deadline_ms`` budget ran out before (or while)
    executing; partial work is abandoned."""

    code = "deadline_exceeded"
    http_status = 504
    retryable = True


class Unavailable(ServiceError):
    """The store could not serve some partitions even after the
    resilience policy (retries, hedging, breaker reroutes) was
    exhausted.  Retryable: the faulted machines may recover."""

    code = "unavailable"
    http_status = 503
    retryable = True


#: code -> class, for client-side reconstruction.
ERROR_CLASSES: Dict[str, type] = {
    cls.code: cls
    for cls in (
        BadRequest,
        Unauthorized,
        NotFound,
        RateLimited,
        Overloaded,
        Draining,
        DeadlineExceeded,
        Unavailable,
    )
}


def error_payload(exc: Exception) -> Tuple[int, Dict[str, Any]]:
    """Fold any failure into the structured wire shape.

    Returns ``(http_status, payload)``.  :class:`ServiceError` carries
    its own status/code; domain errors map to stable codes (a malformed
    request is the caller's fault, a dead k-hop center is a missing
    resource); anything else is an opaque 500 so internals never leak
    as a traceback."""
    if isinstance(exc, ServiceError):
        return exc.http_status, exc.to_payload()
    if isinstance(exc, QueryError):
        return 400, BadRequest(str(exc)).to_payload()
    if isinstance(exc, IndexError_):
        # covers TimeRangeError: the subject isn't in the indexed history
        return 404, NotFound(str(exc)).to_payload()
    if isinstance(exc, StorageError):
        # covers PartitionUnavailable / TransientFetchError /
        # CorruptPayload: the store could not serve the request right
        # now — retryable, unlike a malformed spec or a missing subject
        return 503, Unavailable(str(exc)).to_payload()
    wrapped = ServiceError(f"{type(exc).__name__}: {exc}")
    return wrapped.http_status, wrapped.to_payload()


def error_from_payload(
    status: int,
    payload: Dict[str, Any],
    retry_after: Optional[float] = None,
) -> ServiceError:
    """Client-side inverse of :func:`error_payload`: rebuild the typed
    error a response body describes, so ``except RateLimited`` works the
    same against the HTTP service as in-process."""
    err = payload.get("error") or {}
    cls = ERROR_CLASSES.get(err.get("code"), ServiceError)
    exc = cls(
        err.get("message", f"HTTP {status}"),
        retry_after=err.get("retry_after_s", retry_after),
    )
    exc.http_status = status
    if "retryable" in err:
        exc.retryable = bool(err["retryable"])
    return exc


# ----------------------------------------------------------------------
# spec -> request
# ----------------------------------------------------------------------
def request_from_spec(
    spec: Dict[str, Any], default_algorithm: str = ALGO_AUTO
) -> QueryRequest:
    """Compile one JSON spec into a session request.

    Specs mirror the ``hgs query`` subcommands: ``{"kind": "snapshot",
    "time": t}``, ``{"kind": "node", "node": n, "ts": a, "te": b}``,
    ``{"kind": "khop", "node": n, "time": t, "k": k}`` (``"nodes":
    [...]`` batches several k-hop centers in one request).  ``clients``,
    ``algorithm``, and ``deadline_ms`` are optional per-spec overrides.
    """
    if not isinstance(spec, dict):
        raise BadRequest(
            f"request spec must be a JSON object, got {type(spec).__name__}"
        )
    kind = spec.get("kind")
    try:
        clients = int(spec.get("clients", 1))
        deadline_ms = spec.get("deadline_ms")
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
        allow_partial = bool(spec.get("allow_partial", False))
        if kind == "snapshot":
            return QueryRequest(
                kind="snapshot", t=spec["time"], clients=clients,
                deadline_ms=deadline_ms, allow_partial=allow_partial,
            )
        if kind == "node":
            return QueryRequest(
                kind="node_histories", ts=spec["ts"], te=spec["te"],
                nodes=(spec["node"],), clients=clients, single=True,
                deadline_ms=deadline_ms, allow_partial=allow_partial,
            )
        if kind == "khop":
            if "nodes" in spec:
                nodes, single = tuple(spec["nodes"]), False
            else:
                nodes, single = (spec["node"],), True
            return QueryRequest(
                kind="khop", t=spec["time"], nodes=nodes,
                k=int(spec.get("k", 1)),
                algorithm=spec.get("algorithm", default_algorithm),
                clients=clients, single=single, deadline_ms=deadline_ms,
                allow_partial=allow_partial,
            )
    except KeyError as exc:
        raise BadRequest(
            f"{kind!r} spec is missing required field {exc.args[0]!r}"
        ) from exc
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"malformed {kind!r} spec: {exc}") from exc
    except QueryError as exc:
        raise BadRequest(str(exc)) from exc
    raise BadRequest(
        f"unknown request kind {kind!r} (expected snapshot, node, or khop)"
    )


def spec_from_request(request: QueryRequest) -> Dict[str, Any]:
    """The inverse translation, for clients that hold a compiled
    request: a spec :func:`request_from_spec` maps back to an equal
    request (modulo kinds the wire schema doesn't carry)."""
    spec: Dict[str, Any]
    if request.kind == "snapshot":
        spec = {"kind": "snapshot", "time": request.t}
    elif request.kind == "node_histories" and request.single:
        spec = {
            "kind": "node", "node": request.nodes[0],
            "ts": request.ts, "te": request.te,
        }
    elif request.kind == "khop":
        spec = {"kind": "khop", "time": request.t, "k": request.k,
                "algorithm": request.algorithm}
        if request.single:
            spec["node"] = request.nodes[0]
        else:
            spec["nodes"] = list(request.nodes)
    else:
        raise BadRequest(
            f"query kind {request.kind!r} has no wire form yet"
        )
    if request.clients != 1:
        spec["clients"] = request.clients
    if request.deadline_ms is not None:
        spec["deadline_ms"] = request.deadline_ms
    if request.allow_partial:
        spec["allow_partial"] = True
    return spec


# ----------------------------------------------------------------------
# result -> payload
# ----------------------------------------------------------------------
def graph_summary(g: Any) -> Dict[str, int]:
    return {"nodes": g.num_nodes, "edges": g.num_edges}


def versions_summary(history: Any) -> list:
    return [
        {"t": t, "alive": s is not None,
         "degree": len(s.E) if s else 0,
         "attrs": s.attrs if s else None}
        for t, s in history.versions()
    ]


def result_payload(request: QueryRequest, result: QueryResult) -> dict:
    """The kind-specific half of one query's JSON output (stats are
    appended separately via ``result.stats.as_dict()``)."""
    if request.kind == "snapshot":
        payload = {"snapshot": graph_summary(result.value)}
    elif request.kind == "node_histories":
        payload = {
            "node": request.nodes[0],
            "versions": versions_summary(result.value),
        }
    elif request.single:
        payload = {
            "center": request.nodes[0],
            "k": request.k,
            "neighborhood": graph_summary(result.value),
            "members": sorted(result.value.nodes()),
        }
    else:
        payload = {
            "centers": list(request.nodes),
            "k": request.k,
            "neighborhoods": [
                graph_summary(g) if g is not None else None
                for g in result.value
            ],
        }
    if result.degraded is not None:
        payload["degraded"] = result.degraded
    return payload
