"""Public request/result types of the unified query facade.

The paper splits the system into a historical graph store (TGI, Sec. 4)
and an analytics layer (TAF, Sec. 5); :class:`~repro.session.GraphSession`
is the one front door over both.  This package holds the *data* side of
that API:

- :class:`~repro.api.request.QueryRequest` — a compiled, declarative
  description of one retrieval (what, when, with which algorithm policy).
  Builder terminals (``session.at(t).khop(...)``) compile to requests;
  requests are what the session prices, executes, and EXPLAINs.
- :class:`~repro.api.result.QueryStats` — the consolidated fetch
  accounting every query returns: requests, rounds, bytes, simulated
  latency, overlap savings, cache counters, plus the chosen plan and its
  predicted vs. actual cost.  It normalizes the store-side
  :class:`~repro.kvstore.cost.FetchStats` and the TAF-side
  :class:`~repro.taf.handler.ParallelFetchStats` into one shape.
- :class:`~repro.api.result.QueryResult` — payload + stats + the request
  that produced them.

Algorithm names (:data:`~repro.api.request.ALGORITHMS`) follow the paper:
``snapshot-first`` is Algorithm 3 (fetch the snapshot, filter),
``khop`` is Algorithm 4 (targeted micro-delta expansion; shared-frontier
when a query has several centers), ``khop-per-center`` forces the
per-center Algorithm-4 loop, and ``auto`` lets the session pick whichever
``Cluster.plan_records`` prices cheapest.
"""

from repro.api.request import (
    ALGO_AUTO,
    ALGO_KHOP,
    ALGO_PER_CENTER,
    ALGO_SNAPSHOT_FIRST,
    ALGORITHMS,
    QueryRequest,
)
from repro.api.result import QueryResult, QueryStats
from repro.api.wire import (
    BadRequest,
    DeadlineExceeded,
    Draining,
    NotFound,
    Overloaded,
    RateLimited,
    ServiceError,
    Unauthorized,
    Unavailable,
    error_from_payload,
    error_payload,
    graph_summary,
    request_from_spec,
    result_payload,
    spec_from_request,
    versions_summary,
)

__all__ = [
    "ALGO_AUTO",
    "ALGO_KHOP",
    "ALGO_PER_CENTER",
    "ALGO_SNAPSHOT_FIRST",
    "ALGORITHMS",
    "QueryRequest",
    "QueryResult",
    "QueryStats",
    "BadRequest",
    "DeadlineExceeded",
    "Draining",
    "NotFound",
    "Overloaded",
    "RateLimited",
    "ServiceError",
    "Unauthorized",
    "Unavailable",
    "error_from_payload",
    "error_payload",
    "graph_summary",
    "request_from_spec",
    "result_payload",
    "spec_from_request",
    "versions_summary",
]
