"""Uniform query results: payload + one consolidated stats object.

Before the session facade, three divergent accounting shapes leaked to
callers: raw :class:`~repro.kvstore.cost.FetchStats` from the index,
:class:`~repro.taf.handler.ParallelFetchStats` from the TAF handler, and
the ad-hoc dict the CLI assembled in ``_fetch_summary``.
:class:`QueryStats` normalizes all of them — and adds what none carried:
which plan the session chose and what the cost model predicted for it
versus what the execution actually cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.api.request import QueryRequest


@dataclass
class QueryStats:
    """Consolidated fetch accounting for one executed query.

    Attributes:
        requests: store requests issued (cache hits excluded).
        rounds: multiget rounds.
        bytes_read: stored bytes moved off the simulated wire.
        sim_time_ms: simulated completion time of the fetch (including
            client-side apply time when the cost model prices it).
        overlap_saved_ms: simulated time won by pipelined overlap.
        apply_ms: simulated client-side apply time (payload decode plus
            delta/event replay; 0 under a fetch-only cost model).
        cache_hits / cache_misses / cache_bytes_saved: delta-cache
            outcomes (0 when the session runs uncached).
        checkpoint_hits / checkpoint_misses: materialized-state checkpoint
            outcomes (0 when checkpoints are off); a hit seeded replay
            from a memoized state instead of re-fetching and re-applying.
        checkpoint_near_hits: nearest-in-time seedings — replay started
            from a checkpoint at an earlier time and fetched only the
            eventlist gap between the two times.
        decoded_events: Event objects materialized from columnar rows
            while answering the query (0 when every row was pickled, or
            when the bulk replay kernel applied the arrays directly
            without building Event objects at all).
        coalesced_hits: keys this query needed that another concurrently
            executing plan had already fetched (single-flight dedup; 0
            outside batched/coalesced execution).
        coalesced_bytes_saved: stored bytes those hits kept off the wire.
        merged_rounds: multiget rounds this query shared with at least
            one other plan in a batch (always <= ``rounds``).
        retries: failed key fetches re-attempted by the resilience
            policy (0 when the cluster runs without one).
        hedges: key fetches speculatively re-routed off a straggler
            replica by hedged reads.
        breaker_trips: circuit-breaker closed->open transitions caused
            by this query's rounds.
        backoff_ms: simulated milliseconds spent sleeping between retry
            attempts (already included in ``sim_time_ms``).
        degraded_keys: keys dropped after the retry budget was exhausted
            (only ever nonzero for ``allow_partial`` requests).
        degraded_partitions: human-readable labels of the partitions
            those keys belonged to.
        algorithm: the plan the session executed (e.g. ``snapshot-first``).
        predicted_ms: the cost model's estimate for the chosen plan,
            priced via ``Cluster.plan_records`` before fetching.
        candidates: every candidate plan's predicted cost, so callers can
            see the margin the choice was made on.
    """

    # requests / bytes_read are floats because batched coalesced
    # execution attributes each shared fetch fairly — 1/n of a request
    # and stored_bytes/n to each of its n beneficiary queries — so a
    # per-request share can be fractional; standalone queries keep
    # integral values
    requests: float = 0
    rounds: int = 0
    bytes_read: float = 0
    sim_time_ms: float = 0.0
    overlap_saved_ms: float = 0.0
    apply_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes_saved: int = 0
    checkpoint_hits: int = 0
    checkpoint_misses: int = 0
    checkpoint_near_hits: int = 0
    decoded_events: int = 0
    coalesced_hits: int = 0
    coalesced_bytes_saved: int = 0
    merged_rounds: int = 0
    retries: int = 0
    hedges: int = 0
    breaker_trips: int = 0
    backoff_ms: float = 0.0
    degraded_keys: int = 0
    degraded_partitions: list = field(default_factory=list)
    algorithm: Optional[str] = None
    predicted_ms: Optional[float] = None
    candidates: Dict[str, float] = field(default_factory=dict)

    @property
    def actual_ms(self) -> float:
        """The executed plan's simulated cost (alias of ``sim_time_ms``)."""
        return self.sim_time_ms

    @classmethod
    def from_fetch(
        cls,
        stats: Any,
        algorithm: Optional[str] = None,
        predicted_ms: Optional[float] = None,
        candidates: Optional[Dict[str, float]] = None,
    ) -> "QueryStats":
        """Normalize a ``FetchStats`` or ``ParallelFetchStats``.

        The two shapes disagree on ``requests`` (record list vs. counter);
        everything else is read by attribute name with 0 defaults, so any
        future stats carrier only needs to speak the same field names.
        """
        requests = getattr(stats, "num_requests", None)
        if requests is None:
            requests = getattr(stats, "requests", 0)
        return cls(
            requests=requests,
            rounds=getattr(stats, "rounds", 0),
            bytes_read=getattr(stats, "bytes_read", 0),
            sim_time_ms=getattr(stats, "sim_time_ms", 0.0),
            overlap_saved_ms=getattr(stats, "overlap_saved_ms", 0.0),
            apply_ms=getattr(stats, "apply_ms", 0.0),
            cache_hits=getattr(stats, "cache_hits", 0),
            cache_misses=getattr(stats, "cache_misses", 0),
            cache_bytes_saved=getattr(stats, "cache_bytes_saved", 0),
            checkpoint_hits=getattr(stats, "checkpoint_hits", 0),
            checkpoint_misses=getattr(stats, "checkpoint_misses", 0),
            checkpoint_near_hits=getattr(stats, "checkpoint_near_hits", 0),
            decoded_events=getattr(stats, "decoded_events", 0),
            coalesced_hits=getattr(stats, "coalesced_hits", 0),
            coalesced_bytes_saved=getattr(stats, "coalesced_bytes_saved", 0),
            merged_rounds=getattr(stats, "merged_rounds", 0),
            retries=getattr(stats, "retries", 0),
            hedges=getattr(stats, "hedges", 0),
            breaker_trips=getattr(stats, "breaker_trips", 0),
            backoff_ms=getattr(stats, "backoff_ms", 0.0),
            degraded_keys=getattr(stats, "degraded_keys", 0),
            degraded_partitions=list(
                getattr(stats, "degraded_partitions", ()) or ()
            ),
            algorithm=algorithm,
            predicted_ms=predicted_ms,
            candidates=dict(candidates or {}),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary, keeping the CLI's historical key names
        (``deltas_fetched``, ``rounds``, ``sim_time_ms``, ``cache``) and
        adding the plan-selection fields when a choice was made."""
        def _num(value: float) -> Any:
            # fair fractional shares from batched execution round to 2
            # decimals; integral values stay ints for JSON stability
            return int(value) if float(value).is_integer() else round(value, 2)

        out: Dict[str, Any] = {
            "deltas_fetched": _num(self.requests),
            "rounds": self.rounds,
            "sim_time_ms": round(self.sim_time_ms, 2),
        }
        if self.overlap_saved_ms:
            out["overlap_saved_ms"] = round(self.overlap_saved_ms, 2)
        if self.apply_ms:
            out["apply_ms"] = round(self.apply_ms, 2)
        if self.cache_hits or self.cache_misses:
            out["cache"] = {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "bytes_saved": self.cache_bytes_saved,
            }
        if (
            self.checkpoint_hits
            or self.checkpoint_misses
            or self.checkpoint_near_hits
        ):
            out["checkpoints"] = {
                "hits": self.checkpoint_hits,
                "misses": self.checkpoint_misses,
                "near_hits": self.checkpoint_near_hits,
            }
        if self.decoded_events:
            out["decoded_events"] = self.decoded_events
        if self.coalesced_hits or self.merged_rounds:
            out["coalesce"] = {
                "hits": self.coalesced_hits,
                "bytes_saved": _num(self.coalesced_bytes_saved),
                "merged_rounds": self.merged_rounds,
            }
        if self.retries or self.hedges or self.breaker_trips:
            out["resilience"] = {
                "retries": self.retries,
                "hedges": self.hedges,
                "breaker_trips": self.breaker_trips,
                "backoff_ms": round(self.backoff_ms, 2),
            }
        if self.degraded_keys or self.degraded_partitions:
            out["degraded"] = {
                "keys": self.degraded_keys,
                "partitions": list(self.degraded_partitions),
            }
        if self.algorithm is not None:
            out["algorithm"] = self.algorithm
            out["actual_ms"] = round(self.actual_ms, 2)
            if self.predicted_ms is not None:
                out["predicted_ms"] = round(self.predicted_ms, 2)
        if self.candidates:
            out["candidates"] = {
                name: round(ms, 2) for name, ms in self.candidates.items()
            }
        return out


@dataclass
class QueryResult:
    """Payload plus accounting for one executed :class:`QueryRequest`.

    ``error`` is only ever set by fault-isolating batch execution
    (``execute_batch(..., capture_errors=True)``, which the query
    service uses so one bad request cannot kill a whole batching
    window): the exception that felled this request, with ``value``
    ``None``.  :meth:`raise_for_error` restores raise-on-access
    semantics for callers that want them.

    ``degraded`` is only ever set for ``allow_partial`` requests whose
    fetch actually dropped data: a dict naming the unavailable
    partitions (``{"keys": n, "partitions": [...]}``).  Fault-free
    ``allow_partial`` runs leave it ``None``, so ``degraded is None``
    means the payload is complete.
    """

    request: QueryRequest
    value: Any
    stats: QueryStats
    error: Optional[Exception] = None
    degraded: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def raise_for_error(self) -> "QueryResult":
        """Re-raise a captured per-request failure; chains when ok."""
        if self.error is not None:
            raise self.error
        return self

    def __repr__(self) -> str:
        if self.error is not None:
            return (
                f"<QueryResult {self.request.describe()} "
                f"error={type(self.error).__name__}: {self.error}>"
            )
        return (
            f"<QueryResult {self.request.describe()} "
            f"requests={self.stats.requests} "
            f"sim={self.stats.sim_time_ms:.2f}ms>"
        )
