"""Deterministic, seeded fault injection for the simulated KV cluster."""

from repro.faults.harness import (
    CorruptionFaults,
    CrashWindow,
    FaultInjector,
    FaultSchedule,
    LatencySpike,
    TransientFaults,
    clear_faults,
    flapping_crashes,
    inject_faults,
)

__all__ = [
    "CorruptionFaults",
    "CrashWindow",
    "FaultInjector",
    "FaultSchedule",
    "LatencySpike",
    "TransientFaults",
    "clear_faults",
    "flapping_crashes",
    "inject_faults",
]
