"""A deterministic fault-injection harness wrapping :class:`Cluster`.

The schedule is declarative and keyed on **simulated milliseconds** (the
same clock the cost model and :class:`ExecutionTimeline` run on): the
cluster composes its ``clock_ms`` epoch with each round's release
instant and asks the injector what is broken *at that instant*.  Four
fault families:

- :class:`CrashWindow` — a machine is down for ``[at_ms, until_ms)``;
  routing treats it exactly like ``Cluster.fail_machine`` (stale on
  recovery), but scheduled and reversible in sim-time.
- :class:`LatencySpike` — extra per-request service milliseconds on one
  machine during a window, added to ``RequestRecord.service_ms`` at
  plan time so the spike lands on the timeline and in sim-ms honestly.
- :class:`TransientFaults` — each round touching the machine during the
  window fails with probability ``probability`` (typed
  :class:`TransientFetchError` on the plain path; retried/rerouted by
  the resilient path).
- :class:`CorruptionFaults` — each fetched row served by the machine is
  bit-flipped with probability ``probability``; requires
  ``ClusterConfig.checksums`` so the corruption is *detected* (typed
  :class:`CorruptPayload`) rather than silently decoded.

All probabilistic draws come from one ``random.Random(schedule.seed)``,
and the cluster consumes them in deterministic (server-sorted, plan)
order, so a given schedule replays identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from repro.errors import StorageError


def _active(at_ms: float, until_ms: Optional[float], now: float) -> bool:
    return now >= at_ms and (until_ms is None or now < until_ms)


@dataclass(frozen=True)
class CrashWindow:
    """Machine ``machine`` is down during ``[at_ms, until_ms)``
    (``until_ms=None`` means it never recovers)."""

    machine: int
    at_ms: float
    until_ms: Optional[float] = None


@dataclass(frozen=True)
class LatencySpike:
    """Extra ``extra_ms`` of service time per request on ``machine``
    during ``[at_ms, until_ms)``."""

    machine: int
    extra_ms: float
    at_ms: float = 0.0
    until_ms: Optional[float] = None


@dataclass(frozen=True)
class TransientFaults:
    """Rounds touching ``machine`` fail with ``probability`` during the
    window."""

    machine: int
    probability: float
    at_ms: float = 0.0
    until_ms: Optional[float] = None


@dataclass(frozen=True)
class CorruptionFaults:
    """Rows served by ``machine`` are bit-flipped with ``probability``
    during the window."""

    machine: int
    probability: float
    at_ms: float = 0.0
    until_ms: Optional[float] = None


def flapping_crashes(
    machine: int,
    period_ms: float,
    down_ms: float,
    start_ms: float = 0.0,
    cycles: int = 50,
) -> Tuple[CrashWindow, ...]:
    """A flapping machine: down for ``down_ms`` at the start of each
    ``period_ms`` cycle, ``cycles`` times — the canonical bench schedule."""
    if not 0 < down_ms <= period_ms:
        raise StorageError("down_ms must be in (0, period_ms]")
    return tuple(
        CrashWindow(
            machine,
            start_ms + i * period_ms,
            start_ms + i * period_ms + down_ms,
        )
        for i in range(cycles)
    )


@dataclass(frozen=True)
class FaultSchedule:
    crashes: Tuple[CrashWindow, ...] = ()
    latency: Tuple[LatencySpike, ...] = ()
    transient: Tuple[TransientFaults, ...] = ()
    corruption: Tuple[CorruptionFaults, ...] = ()
    seed: int = 0


class FaultInjector:
    """Evaluates a :class:`FaultSchedule` at simulated instants.

    Owns the schedule's RNG and a few observability counters
    (``injected_transients`` / ``injected_corruptions`` /
    ``spiked_requests``) so tests and benches can assert the harness
    actually fired.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.rng = random.Random(schedule.seed)
        self.injected_transients = 0
        self.injected_corruptions = 0
        self.spiked_requests = 0

    def down_machines(self, now: float) -> Set[int]:
        return {
            w.machine
            for w in self.schedule.crashes
            if _active(w.at_ms, w.until_ms, now)
        }

    def extra_latency_ms(self, machine: int, now: float) -> float:
        extra = sum(
            s.extra_ms
            for s in self.schedule.latency
            if s.machine == machine and _active(s.at_ms, s.until_ms, now)
        )
        if extra:
            self.spiked_requests += 1
        return extra

    def transient_failures(self, machines, now: float) -> Set[int]:
        """Which of ``machines`` fail this round (one draw per machine,
        in sorted machine order for determinism)."""
        failed: Set[int] = set()
        for machine in sorted(machines):
            p = max(
                (
                    t.probability
                    for t in self.schedule.transient
                    if t.machine == machine and _active(t.at_ms, t.until_ms, now)
                ),
                default=0.0,
            )
            if p > 0 and self.rng.random() < p:
                failed.add(machine)
        self.injected_transients += len(failed)
        return failed

    def corrupts(self, machine: int, now: float) -> bool:
        """One draw per fetched row served by ``machine``."""
        p = max(
            (
                c.probability
                for c in self.schedule.corruption
                if c.machine == machine and _active(c.at_ms, c.until_ms, now)
            ),
            default=0.0,
        )
        if p > 0 and self.rng.random() < p:
            self.injected_corruptions += 1
            return True
        return False


def inject_faults(cluster, schedule: FaultSchedule) -> FaultInjector:
    """Attach a fresh injector for ``schedule`` to ``cluster``.

    Corruption faults require the cluster to store checksummed payloads
    (``ClusterConfig.checksums``) — without the envelope a flipped byte
    would surface as an unpickling crash or, worse, silently wrong data.
    """
    if schedule.corruption and not getattr(cluster.config, "checksums", False):
        raise StorageError(
            "corruption faults require ClusterConfig.checksums=True so "
            "corrupted rows are detected as CorruptPayload"
        )
    injector = FaultInjector(schedule)
    cluster.faults = injector
    return injector


def clear_faults(cluster) -> None:
    cluster.faults = None
