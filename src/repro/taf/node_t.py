"""Temporal operands: NodeT and SubgraphT (paper Definitions 6-7).

A **temporal node** (NodeT) is the sequence of all states of one node over
a time range; physically it is stored exactly as the paper prescribes
(Sec. 5.2): an initial snapshot of the node followed by a chronologically
sorted list of events, with iterator-style access.

A **temporal subgraph** (SubgraphT) generalizes NodeT to a set of nodes
(typically a k-hop neighborhood) and can materialize an in-memory
:class:`~repro.graph.static.Graph` as of any covered time point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.deltas.base import StaticNode
from repro.errors import TimeRangeError
from repro.graph.events import Event
from repro.graph.static import Graph
from repro.index.interface import NodeHistory, evolve_node_state
from repro.types import AttrMap, NodeId, TimePoint, canonical_edge


class NodeT:
    """A node's full evolution over ``[ts, te]``."""

    __slots__ = ("history",)

    def __init__(self, history: NodeHistory) -> None:
        self.history = history

    # -- identity / range ---------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        return self.history.node

    def get_start_time(self) -> TimePoint:
        return self.history.ts

    def get_end_time(self) -> TimePoint:
        return self.history.te

    # -- states ----------------------------------------------------------
    def get_state_at(self, t: TimePoint) -> Optional[StaticNode]:
        """The node's static state as of ``t``."""
        return self.history.state_at(t)

    def get_versions(self) -> List[Tuple[TimePoint, Optional[StaticNode]]]:
        """All distinct (time, state) versions, oldest first."""
        return self.history.versions()

    def get_version_at(self, t: TimePoint) -> Optional[StaticNode]:
        """Alias for :meth:`get_state_at` (paper's ``getVersionAt``)."""
        return self.get_state_at(t)

    def get_neighbor_ids_at(self, t: TimePoint) -> Set[NodeId]:
        state = self.get_state_at(t)
        return set(state.E) if state is not None else set()

    def get_iterator(self) -> Iterator[Tuple[TimePoint, Optional[StaticNode]]]:
        """Chronological iterator over versions (paper's ``GetIterator``)."""
        return iter(self.get_versions())

    def change_points(self) -> List[TimePoint]:
        """Times at which the node's state changed (excluding ``ts``)."""
        return [t for t, _ in self.get_versions()[1:]]

    @property
    def events(self) -> Tuple[Event, ...]:
        return self.history.events

    def timeslice(self, ts: TimePoint, te: TimePoint) -> "NodeT":
        """Restrict the temporal node to ``[ts, te]`` ⊆ its range."""
        if ts > te:
            raise TimeRangeError(f"inverted timeslice [{ts}, {te}]")
        ts = max(ts, self.get_start_time())
        te = min(te, self.get_end_time())
        initial = self.history.state_at(ts)
        events = tuple(
            ev for ev in self.history.events if ts < ev.time <= te
        )
        return NodeT(NodeHistory(self.node_id, ts, te, initial, events))

    def project_attrs(self, keys: Sequence[str]) -> "NodeT":
        """Keep only the given attribute keys (the TAF ``Filter`` operator:
        a projection along the attribute dimension of Fig. 6)."""
        keep = set(keys)

        def proj(state: Optional[StaticNode]) -> Optional[StaticNode]:
            if state is None:
                return None
            attrs = {k: v for k, v in state.attrs.items() if k in keep}
            return StaticNode.make(state.I, state.E, attrs)

        def proj_event(ev: Event) -> Event:
            # NODE_ADD / EDGE_ADD events may carry a full attribute map in
            # their value; project it too so replay cannot reintroduce
            # filtered-out attributes
            if isinstance(ev.value, dict):
                return Event(
                    ev.time, ev.seq, ev.kind, ev.node, ev.other, ev.key,
                    {k: v for k, v in ev.value.items() if k in keep},
                    ev.old_value,
                )
            return ev

        events = tuple(
            proj_event(ev)
            for ev in self.history.events
            if ev.key is None or ev.key in keep
        )
        return NodeT(
            NodeHistory(
                self.node_id,
                self.get_start_time(),
                self.get_end_time(),
                proj(self.history.initial),
                events,
            )
        )

    def __repr__(self) -> str:
        return (
            f"<NodeT id={self.node_id} range=[{self.get_start_time()}, "
            f"{self.get_end_time()}] events={len(self.history.events)}>"
        )


class SubgraphT:
    """Evolution of a subgraph (k-hop neighborhood) over ``[ts, te]``.

    Holds the member nodes' temporal histories plus the edge-attribute
    events among them; ``get_version_at`` materializes an in-memory
    :class:`Graph` of the subgraph as of a time point.
    """

    __slots__ = ("center", "k", "members", "edge_attrs_initial")

    def __init__(
        self,
        center: NodeId,
        k: int,
        members: Dict[NodeId, NodeT],
        edge_attrs_initial: Optional[Dict[Tuple[NodeId, NodeId], AttrMap]] = None,
    ) -> None:
        self.center = center
        self.k = k
        self.members = members
        self.edge_attrs_initial = edge_attrs_initial or {}

    def get_start_time(self) -> TimePoint:
        return min(nt.get_start_time() for nt in self.members.values())

    def get_end_time(self) -> TimePoint:
        return max(nt.get_end_time() for nt in self.members.values())

    def member_ids(self) -> List[NodeId]:
        return sorted(self.members)

    def get_version_at(self, t: TimePoint) -> Graph:
        """Materialize the subgraph state at ``t`` (induced on members that
        are alive and within k hops of the center at ``t``)."""
        g = Graph()
        states: Dict[NodeId, StaticNode] = {}
        for nid, nt in self.members.items():
            if not (nt.get_start_time() <= t <= nt.get_end_time()):
                continue
            state = nt.get_state_at(t)
            if state is not None:
                states[nid] = state
        for nid, state in states.items():
            g.add_node(nid, state.attrs)
        for nid, state in states.items():
            for nbr in state.E:
                if nbr in states and not g.has_edge(nid, nbr):
                    eid = canonical_edge(nid, nbr)
                    g.add_edge(nid, nbr, self.edge_attrs_initial.get(eid))
        if g.has_node(self.center):
            return g.khop_subgraph(self.center, self.k)
        return g

    def change_points(self) -> List[TimePoint]:
        """Times at which the subgraph itself changes: the times of events
        within the member set (cross-boundary edge events change a member
        node's own edge list but not the induced subgraph, so they are
        excluded — this keeps ``NodeComputeTemporal`` and
        ``NodeComputeDelta`` on the same evaluation grid)."""
        points: Set[TimePoint] = set()
        for ev in self.member_events():
            points.add(ev.time)
        return sorted(points)

    def events_sorted(self) -> List[Event]:
        """All member events, deduplicated (edge events appear in both
        endpoint histories) and sorted."""
        seen: Set[int] = set()
        out: List[Event] = []
        for nt in self.members.values():
            for ev in nt.events:
                if ev.seq not in seen:
                    seen.add(ev.seq)
                    out.append(ev)
        out.sort(key=Event.sort_key)
        return out

    def member_events(self) -> List[Event]:
        """Events restricted to the member set (node events of members,
        edge events with both endpoints among members), deduplicated and
        sorted.  This is the event stream the ``NodeCompute*`` operators
        replay; it matches :meth:`members_induced_at` semantics."""
        keep = set(self.members)
        out = []
        for ev in self.events_sorted():
            if ev.other is None:
                if ev.node in keep:
                    out.append(ev)
            elif ev.node in keep and ev.other in keep:
                out.append(ev)
        return out

    def members_induced_at(self, t: TimePoint) -> Graph:
        """Induced graph on *all* member nodes alive at ``t`` (no k-hop
        pruning) — the stable operand used by incremental computation."""
        g = Graph()
        states: Dict[NodeId, StaticNode] = {}
        for nid, nt in self.members.items():
            if not (nt.get_start_time() <= t <= nt.get_end_time()):
                continue
            state = nt.get_state_at(t)
            if state is not None:
                states[nid] = state
        for nid, state in states.items():
            g.add_node(nid, state.attrs)
        for nid, state in states.items():
            for nbr in state.E:
                if nbr in states and not g.has_edge(nid, nbr):
                    eid = canonical_edge(nid, nbr)
                    g.add_edge(nid, nbr, self.edge_attrs_initial.get(eid))
        return g

    def timeslice(self, ts: TimePoint, te: TimePoint) -> "SubgraphT":
        return SubgraphT(
            self.center,
            self.k,
            {nid: nt.timeslice(ts, te) for nid, nt in self.members.items()},
            self.edge_attrs_initial,
        )

    def __repr__(self) -> str:
        return (
            f"<SubgraphT center={self.center} k={self.k} "
            f"members={len(self.members)}>"
        )
