"""Temporal Graph Analysis Framework (paper Sec. 5)."""

from repro.taf.aggregation import TempAggregation, peaks, saturate, series_max, series_mean, series_min
from repro.taf.expressions import date_ordinal, parse_entity_predicate, parse_time_expression
from repro.taf.handler import ParallelFetchStats, TGIHandler
from repro.taf.node_t import NodeT, SubgraphT
from repro.taf.son import SON, SOTS, ComputedValues, TGraph, TemporalSeriesSet
from repro.taf import patterns, timepoints

__all__ = [
    "SON",
    "SOTS",
    "NodeT",
    "SubgraphT",
    "TGraph",
    "ComputedValues",
    "TemporalSeriesSet",
    "TGIHandler",
    "ParallelFetchStats",
    "TempAggregation",
    "series_max",
    "series_min",
    "series_mean",
    "peaks",
    "saturate",
    "timepoints",
    "patterns",
    "date_ordinal",
    "parse_entity_predicate",
    "parse_time_expression",
]
