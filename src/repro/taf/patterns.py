"""Incremental temporal pattern counting (paper Sec. 5.2, "finding counts
of a small pattern over time on an SoTS").

The paper argues that pattern counts over long version sequences need
auxiliary inverted indexes updated per event, so each event is processed in
constant (amortized) time instead of re-matching the pattern on every new
snapshot.  This module provides exactly that machinery for the classic
small patterns:

- :class:`EdgeCounter` — edges matching an attribute predicate;
- :class:`WedgeCounter` — open two-paths (wedges) through any node;
- :class:`TriangleCounter` — triangles;
- :class:`LabeledEdgeCounter` — edges whose endpoints carry given labels.

Each counter implements the incremental protocol used by
``NodeComputeDelta``: ``initial(graph)`` computes the count on a snapshot
and builds the auxiliary state; ``update(graph_before, event)`` folds one
event and returns the new count.  A convenience :func:`count_over_time`
runs a counter across a :class:`~repro.taf.node_t.SubgraphT`.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AnalyticsError
from repro.graph.events import Event, EventKind
from repro.graph.static import Graph
from repro.taf.node_t import SubgraphT
from repro.types import NodeId, TimePoint


class IncrementalCounter(abc.ABC):
    """Protocol for incrementally maintained pattern counts."""

    @abc.abstractmethod
    def initial(self, g: Graph) -> float:
        """Count the pattern on a snapshot and build auxiliary state."""

    @abc.abstractmethod
    def update(self, g_before: Graph, ev: Event) -> float:
        """Fold one event (``g_before`` is the graph *before* the event)
        and return the updated count."""


class EdgeCounter(IncrementalCounter):
    """Count edges, optionally restricted by an edge-attribute predicate
    evaluated at insertion time."""

    def __init__(
        self, predicate: Optional[Callable[[dict], bool]] = None
    ) -> None:
        self.predicate = predicate
        self._count = 0
        self._matched: set = set()

    def initial(self, g: Graph) -> float:
        self._matched = set()
        for (u, v) in g.edges():
            if self.predicate is None or self.predicate(g.edge_attrs(u, v)):
                self._matched.add((u, v))
        self._count = len(self._matched)
        return self._count

    def update(self, g_before: Graph, ev: Event) -> float:
        if ev.kind == EventKind.EDGE_ADD and ev.edge is not None:
            attrs = ev.value if isinstance(ev.value, dict) else {}
            if self.predicate is None or self.predicate(attrs):
                if ev.edge not in self._matched:
                    self._matched.add(ev.edge)
                    self._count += 1
        elif ev.kind == EventKind.EDGE_DELETE and ev.edge is not None:
            if ev.edge in self._matched:
                self._matched.discard(ev.edge)
                self._count -= 1
        elif ev.kind == EventKind.NODE_DELETE:
            for e in [e for e in self._matched if ev.node in e]:
                self._matched.discard(e)
                self._count -= 1
        return self._count


class WedgeCounter(IncrementalCounter):
    """Count wedges (paths of length two): Σ_v C(deg(v), 2).

    Auxiliary state is the degree map — the inverted index that lets each
    edge event adjust the count in O(1).
    """

    def __init__(self) -> None:
        self._degree: Dict[NodeId, int] = {}
        self._count = 0

    def initial(self, g: Graph) -> float:
        self._degree = {v: g.degree(v) for v in g.nodes()}
        self._count = sum(d * (d - 1) // 2 for d in self._degree.values())
        return self._count

    def _bump(self, node: NodeId, delta: int) -> None:
        d = self._degree.get(node, 0)
        # removing one edge from a degree-d node removes (d-1) wedges
        if delta > 0:
            self._count += d
        else:
            self._count -= d - 1
        self._degree[node] = d + delta

    def update(self, g_before: Graph, ev: Event) -> float:
        if ev.kind == EventKind.EDGE_ADD and ev.other is not None:
            self._bump(ev.node, +1)
            self._bump(ev.other, +1)
        elif ev.kind == EventKind.EDGE_DELETE and ev.other is not None:
            self._bump(ev.node, -1)
            self._bump(ev.other, -1)
        elif ev.kind == EventKind.NODE_ADD:
            self._degree.setdefault(ev.node, 0)
        elif ev.kind == EventKind.NODE_DELETE:
            # incident edges must already have been deleted by the stream
            self._degree.pop(ev.node, None)
        return self._count


class TriangleCounter(IncrementalCounter):
    """Count triangles, maintained via adjacency sets: an edge (u, v)
    contributes |N(u) ∩ N(v)| triangles on insertion/removal."""

    def __init__(self) -> None:
        self._adj: Dict[NodeId, set] = {}
        self._count = 0

    def initial(self, g: Graph) -> float:
        self._adj = {v: set(g.neighbors(v)) for v in g.nodes()}
        count = 0
        for v in g.nodes():
            for u in g.neighbors(v):
                if u > v:
                    count += len(self._adj[v] & self._adj[u] )
        # each triangle counted once per edge with u > v -> 3 times total
        self._count = count // 3 if count % 3 == 0 else count / 3
        self._count = count // 3
        return self._count

    def update(self, g_before: Graph, ev: Event) -> float:
        if ev.kind == EventKind.EDGE_ADD and ev.other is not None:
            u, v = ev.node, ev.other
            nu = self._adj.setdefault(u, set())
            nv = self._adj.setdefault(v, set())
            if v not in nu:
                self._count += len(nu & nv)
                nu.add(v)
                nv.add(u)
        elif ev.kind == EventKind.EDGE_DELETE and ev.other is not None:
            u, v = ev.node, ev.other
            nu = self._adj.get(u, set())
            nv = self._adj.get(v, set())
            if v in nu:
                nu.discard(v)
                nv.discard(u)
                self._count -= len(nu & nv)
        elif ev.kind == EventKind.NODE_ADD:
            self._adj.setdefault(ev.node, set())
        elif ev.kind == EventKind.NODE_DELETE:
            self._adj.pop(ev.node, None)
        return self._count


class LabeledEdgeCounter(IncrementalCounter):
    """Count edges whose endpoints carry the given node-attribute labels
    (order-insensitive): e.g. collaboration edges between an 'Author' and
    an 'Editor'.  Auxiliary state: label map + per-node matched-edge sets.
    """

    def __init__(self, key: str, label_a, label_b) -> None:
        self.key = key
        self.label_a = label_a
        self.label_b = label_b
        self._labels: Dict[NodeId, object] = {}
        self._adj: Dict[NodeId, set] = {}
        self._count = 0

    def _edge_matches(self, u: NodeId, v: NodeId) -> bool:
        la, lb = self._labels.get(u), self._labels.get(v)
        return (la == self.label_a and lb == self.label_b) or (
            la == self.label_b and lb == self.label_a
        )

    def initial(self, g: Graph) -> float:
        self._labels = {v: g.node_attrs(v).get(self.key) for v in g.nodes()}
        self._adj = {v: set(g.neighbors(v)) for v in g.nodes()}
        self._count = sum(
            1 for (u, v) in g.edges() if self._edge_matches(u, v)
        )
        return self._count

    def update(self, g_before: Graph, ev: Event) -> float:
        kind = ev.kind
        if kind == EventKind.EDGE_ADD and ev.other is not None:
            u, v = ev.node, ev.other
            if v not in self._adj.setdefault(u, set()):
                self._adj[u].add(v)
                self._adj.setdefault(v, set()).add(u)
                if self._edge_matches(u, v):
                    self._count += 1
        elif kind == EventKind.EDGE_DELETE and ev.other is not None:
            u, v = ev.node, ev.other
            if v in self._adj.get(u, set()):
                self._adj[u].discard(v)
                self._adj.get(v, set()).discard(u)
                if self._edge_matches(u, v):
                    self._count -= 1
        elif kind == EventKind.NODE_ADD:
            attrs = ev.value if isinstance(ev.value, dict) else {}
            self._labels[ev.node] = attrs.get(self.key)
            self._adj.setdefault(ev.node, set())
        elif kind == EventKind.NODE_DELETE:
            self._labels.pop(ev.node, None)
            self._adj.pop(ev.node, None)
        elif kind == EventKind.NODE_ATTR_SET and ev.key == self.key:
            # relabeling flips the match status of every incident edge
            old = self._labels.get(ev.node)
            for nbr in self._adj.get(ev.node, set()):
                if self._pair_matches(old, self._labels.get(nbr)):
                    self._count -= 1
            self._labels[ev.node] = ev.value
            for nbr in self._adj.get(ev.node, set()):
                if self._pair_matches(ev.value, self._labels.get(nbr)):
                    self._count += 1
        elif kind == EventKind.NODE_ATTR_DEL and ev.key == self.key:
            old = self._labels.get(ev.node)
            for nbr in self._adj.get(ev.node, set()):
                if self._pair_matches(old, self._labels.get(nbr)):
                    self._count -= 1
            self._labels[ev.node] = None
        return self._count

    def _pair_matches(self, la, lb) -> bool:
        return (la == self.label_a and lb == self.label_b) or (
            la == self.label_b and lb == self.label_a
        )


def count_over_time(
    subgraph: SubgraphT,
    counter_factory: Callable[[], IncrementalCounter],
) -> List[Tuple[TimePoint, float]]:
    """Run an incremental counter over a temporal subgraph.

    Returns the count series at every change point of the subgraph; the
    counter's auxiliary state is built once on the initial snapshot and
    folded through the member events — the O(N + T) pattern the paper's
    NodeComputeDelta exists for.
    """
    counter = counter_factory()
    ts = subgraph.get_start_time()
    g = subgraph.members_induced_at(ts)
    value = counter.initial(g)
    series: List[Tuple[TimePoint, float]] = [(ts, value)]
    for ev in subgraph.member_events():
        if ev.time <= ts:
            continue
        value = counter.update(g, ev)
        g.apply_event(ev)
        if series[-1][0] == ev.time:
            series[-1] = (ev.time, value)
        else:
            series.append((ev.time, value))
    return series


def brute_force_count(
    subgraph: SubgraphT,
    snapshot_counter: Callable[[Graph], float],
) -> List[Tuple[TimePoint, float]]:
    """Reference implementation: recount on a fresh snapshot at every
    change point (O(N·T)); used to validate the incremental counters."""
    points = [subgraph.get_start_time()] + subgraph.change_points()
    out = []
    for t in points:
        value = snapshot_counter(subgraph.members_induced_at(t))
        if out and out[-1][0] == t:
            out[-1] = (t, value)
        else:
            out.append((t, value))
    return out
