"""Temporal aggregation operators (paper operator 9, *TempAggregation*).

These operate on scalar time series — lists of ``(time, value)`` pairs —
as produced by ``Evolution`` and the ``NodeCompute*`` operators: Max, Min,
Mean, Peak (local maxima, e.g. "times of peak network density") and
Saturate (time after which the quantity stays near its final value).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import AnalyticsError
from repro.types import TimePoint

Series = Sequence[Tuple[TimePoint, float]]


def series_max(series: Series) -> Tuple[TimePoint, float]:
    """The (time, value) with the maximum value (earliest on ties)."""
    if not series:
        raise AnalyticsError("aggregate of empty series")
    return max(series, key=lambda p: (p[1], -p[0]))


def series_min(series: Series) -> Tuple[TimePoint, float]:
    """The (time, value) with the minimum value (earliest on ties)."""
    if not series:
        raise AnalyticsError("aggregate of empty series")
    return min(series, key=lambda p: (p[1], p[0]))


def series_mean(series: Series) -> float:
    """Unweighted mean of the values."""
    if not series:
        raise AnalyticsError("aggregate of empty series")
    return sum(v for _, v in series) / len(series)


def peaks(series: Series) -> List[Tuple[TimePoint, float]]:
    """Local maxima: points strictly greater than both neighbors (series
    endpoints qualify when greater than their single neighbor)."""
    pts = list(series)
    if len(pts) == 1:
        return list(pts)
    out: List[Tuple[TimePoint, float]] = []
    for i, (t, v) in enumerate(pts):
        left_ok = i == 0 or pts[i - 1][1] < v
        right_ok = i == len(pts) - 1 or pts[i + 1][1] < v
        if left_ok and right_ok:
            out.append((t, v))
    return out


def saturate(series: Series, tolerance: float = 0.05) -> Optional[TimePoint]:
    """Earliest time after which the value stays within ``tolerance``
    (relative) of the final value; ``None`` if the series never settles
    (i.e. only the last point qualifies)."""
    pts = list(series)
    if not pts:
        raise AnalyticsError("aggregate of empty series")
    final = pts[-1][1]
    band = abs(final) * tolerance if final else tolerance
    settle: Optional[TimePoint] = None
    for t, v in pts:
        if abs(v - final) <= band:
            if settle is None:
                settle = t
        else:
            settle = None
    return settle


class TempAggregation:
    """Namespace mirroring the paper's TempAggregation operator family."""

    Max = staticmethod(series_max)
    Min = staticmethod(series_min)
    Mean = staticmethod(series_mean)
    Peak = staticmethod(peaks)
    Saturate = staticmethod(saturate)
