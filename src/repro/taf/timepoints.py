"""Timepoint-specification functions (paper Fig. 9).

The ``NodeCompute*``, ``Evolution`` and ``Compare`` operators evaluate, by
default, at every point of change of their operand; a user may instead pass
one of these selectors (or any callable with the same shape) to control the
evaluation grid.
"""

from __future__ import annotations

from typing import Callable, List, Protocol, Sequence

from repro.types import TimePoint


class _TemporalOperand(Protocol):
    def get_start_time(self) -> TimePoint: ...

    def get_end_time(self) -> TimePoint: ...

    def change_points(self) -> List[TimePoint]: ...


TimepointSelector = Callable[[_TemporalOperand], List[TimePoint]]


def all_change_points(operand: _TemporalOperand) -> List[TimePoint]:
    """Start time plus every point of change (the default grid)."""
    points = [operand.get_start_time()]
    for t in operand.change_points():
        if t != points[-1]:
            points.append(t)
    return points


def endpoints_and_middle(operand: _TemporalOperand) -> List[TimePoint]:
    """Start, midpoint and end (the paper's ``selectTimepointsMinimal``)."""
    st, et = operand.get_start_time(), operand.get_end_time()
    mid = (st + et) // 2
    out = [st]
    if mid not in out:
        out.append(mid)
    if et not in out:
        out.append(et)
    return out


def uniform(n: int) -> TimepointSelector:
    """``n`` evenly spaced timepoints across the operand's range."""
    if n < 1:
        raise ValueError("need at least one sample point")

    def select(operand: _TemporalOperand) -> List[TimePoint]:
        st, et = operand.get_start_time(), operand.get_end_time()
        if n == 1 or et == st:
            return [st]
        step = (et - st) / (n - 1)
        points = []
        for i in range(n):
            t = round(st + i * step)
            if not points or t != points[-1]:
                points.append(t)
        return points

    return select


def fixed(points: Sequence[TimePoint]) -> TimepointSelector:
    """Always evaluate at the given constant list of timepoints."""
    frozen = sorted(points)

    def select(_operand: _TemporalOperand) -> List[TimePoint]:
        return list(frozen)

    return select


def union_change_points(*operands: _TemporalOperand) -> List[TimePoint]:
    """All change points across several operands (the paper's
    ``selectTimepointsAll`` for Compare)."""
    points: set = set()
    for op in operands:
        points.add(op.get_start_time())
        points.update(op.change_points())
    return sorted(points)
