"""String predicate parsing for the TAF API.

The paper's examples (Fig. 7) pass predicates as strings::

    SON(tgiH).Select("id < 5000")
    son.Select('community = "A"')
    son.Timeslice("t >= Jan 1,2003 and t < Jan 1, 2004")

This module parses that small language:

- comparisons: ``<field> <op> <literal>`` with ops ``= == != < <= > >=``;
- fields: ``id`` (node id), ``t`` (time, only in time expressions), or any
  attribute name;
- literals: integers, floats, quoted strings, or ``Month D,YYYY`` dates
  (mapped to proleptic-Gregorian day ordinals — the library's integer time
  domain);
- conjunction with ``and`` (time expressions) / ``and`` & ``or`` (entity
  predicates).
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import QueryError
from repro.types import TIME_MAX, TIME_MIN, TimePoint

_COMPARISON = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(==|=|!=|<=|>=|<|>)\s*(.+?)\s*$"
)

_DATE_FORMATS = ("%b %d,%Y", "%b %d, %Y", "%B %d,%Y", "%B %d, %Y", "%Y-%m-%d")


def parse_literal(text: str) -> Any:
    """Parse a literal: quoted string, int, float, or date."""
    text = text.strip()
    if len(text) >= 2 and text[0] in "'\"" and text[-1] == text[0]:
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    date = parse_date(text)
    if date is not None:
        return date
    raise QueryError(f"cannot parse literal {text!r}")


def parse_date(text: str) -> Optional[TimePoint]:
    """``Month D,YYYY``-style date → day ordinal, or None if not a date."""
    cleaned = " ".join(text.strip().split())
    for fmt in _DATE_FORMATS:
        try:
            return _dt.datetime.strptime(cleaned, fmt).date().toordinal()
        except ValueError:
            continue
    return None


def date_ordinal(year: int, month: int, day: int) -> TimePoint:
    """Convenience: day-ordinal time point for a calendar date."""
    return _dt.date(year, month, day).toordinal()


_OPS: dict = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
}


def _split_clauses(expr: str, keyword: str) -> List[str]:
    """Split on a lowercase keyword outside of quotes."""
    parts: List[str] = []
    depth_quote: Optional[str] = None
    token = []
    i = 0
    low = expr.lower()
    klen = len(keyword)
    while i < len(expr):
        ch = expr[i]
        if depth_quote:
            if ch == depth_quote:
                depth_quote = None
            token.append(ch)
            i += 1
            continue
        if ch in "'\"":
            depth_quote = ch
            token.append(ch)
            i += 1
            continue
        boundary_ok = (i == 0 or not expr[i - 1].isalnum()) and (
            i + klen >= len(expr) or not expr[i + klen].isalnum()
        )
        if low.startswith(keyword, i) and boundary_ok:
            parts.append("".join(token))
            token = []
            i += klen
            continue
        token.append(ch)
        i += 1
    parts.append("".join(token))
    return [p.strip() for p in parts if p.strip()]


def parse_entity_predicate(expr: str) -> Callable[[int, dict], bool]:
    """Compile an entity predicate: ``f(node_id, attrs) -> bool``.

    Supports ``and``-joined (conjunction binds tighter) and ``or``-joined
    comparisons over ``id`` and attribute names.
    """

    def compile_comparison(clause: str) -> Callable[[int, dict], bool]:
        m = _COMPARISON.match(clause)
        if not m:
            raise QueryError(f"cannot parse predicate clause {clause!r}")
        field, op, raw = m.groups()
        literal = parse_literal(raw)
        cmp = _OPS[op]
        if field == "id":
            return lambda nid, attrs: cmp(nid, literal)
        return lambda nid, attrs: cmp(attrs.get(field), literal)

    def compile_conjunction(part: str) -> Callable[[int, dict], bool]:
        clauses = [compile_comparison(c) for c in _split_clauses(part, "and")]
        return lambda nid, attrs: all(c(nid, attrs) for c in clauses)

    disjuncts = [compile_conjunction(p) for p in _split_clauses(expr, "or")]
    if not disjuncts:
        raise QueryError(f"empty predicate {expr!r}")
    return lambda nid, attrs: any(d(nid, attrs) for d in disjuncts)


def parse_time_expression(expr: str) -> Tuple[TimePoint, TimePoint]:
    """Compile a time expression into a closed interval ``[ts, te]``.

    ``"t = X"`` yields the point interval ``[X, X]``; comparisons are
    intersected:  ``"t >= a and t < b"`` → ``[a, b-1]``.
    """
    lo, hi = TIME_MIN, TIME_MAX
    for clause in _split_clauses(expr, "and"):
        m = _COMPARISON.match(clause)
        if not m or m.group(1) != "t":
            raise QueryError(f"cannot parse time clause {clause!r}")
        _field, op, raw = m.groups()
        value = parse_literal(raw)
        if not isinstance(value, int):
            raise QueryError(f"time literal must resolve to an integer: {raw!r}")
        if op in ("=", "=="):
            lo, hi = max(lo, value), min(hi, value)
        elif op == ">=":
            lo = max(lo, value)
        elif op == ">":
            lo = max(lo, value + 1)
        elif op == "<=":
            hi = min(hi, value)
        elif op == "<":
            hi = min(hi, value - 1)
        else:
            raise QueryError(f"operator {op!r} not valid in time expressions")
    if lo > hi:
        raise QueryError(f"empty time interval from {expr!r}")
    return lo, hi


def predicate_fields(expr: str) -> set:
    """Field names referenced by an entity predicate (used to decide
    whether a Select can prune the node universe before fetching)."""
    fields = set()
    for part in _split_clauses(expr, "or"):
        for clause in _split_clauses(part, "and"):
            m = _COMPARISON.match(clause)
            if not m:
                raise QueryError(f"cannot parse predicate clause {clause!r}")
            fields.add(m.group(1))
    return fields
