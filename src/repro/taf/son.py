"""Sets of temporal nodes and subgraphs — the TAF operands and operators
(paper Sec. 5.1).

``SON`` / ``SOTS`` objects have two phases, matching the paper's lazy
data-fetch protocol (Sec. 5.2 "Data Fetch"):

1. **specification** — ``Select`` / ``Timeslice`` / ``Filter`` calls on an
   unfetched set accumulate the query; nothing hits the store;
2. **materialized** — ``fetch()`` executes one parallel retrieval plan
   against the TGI; subsequent operators (``Select``, ``Timeslice``,
   ``NodeCompute``, ``NodeComputeTemporal``, ``NodeComputeDelta``,
   ``Compare``, ``Evolution`` via ``GetGraph``) run on the in-memory RDD.

Method names use the paper's capitalized form so its listings (Fig. 7-9)
port directly.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import AnalyticsError, QueryError
from repro.graph.events import Event
from repro.graph.static import Graph
from repro.index.interface import evolve_node_state
from repro.taf.expressions import (
    parse_entity_predicate,
    parse_time_expression,
    predicate_fields,
)
from repro.taf.handler import TGIHandler
from repro.taf.node_t import NodeT, SubgraphT
from repro.taf import timepoints as tp_mod
from repro.types import NodeId, TimePoint, canonical_edge

TimepointsSpec = Union[None, int, Sequence[TimePoint], Callable[..., List[TimePoint]]]


def _call_metric(f: Callable, operand: Any, center: Optional[NodeId]) -> Any:
    """Call a user metric with (operand) or (operand, center) depending on
    its arity, so both ``gm.density`` and ``nm.LCC`` work unmodified."""
    try:
        params = [
            p
            for p in inspect.signature(f).parameters.values()
            if p.default is inspect.Parameter.empty
            and p.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        ]
        wants_two = len(params) >= 2
    except (TypeError, ValueError):
        wants_two = False
    if wants_two and center is not None:
        return f(operand, center)
    return f(operand)


def _resolve_timepoints(spec: TimepointsSpec, operand: Any) -> List[TimePoint]:
    if spec is None:
        return tp_mod.all_change_points(operand)
    if isinstance(spec, int):
        return tp_mod.uniform(spec)(operand)
    if callable(spec):
        return spec(operand)
    return sorted(spec)


class ComputedValues:
    """Result of ``NodeCompute``: one value per node/subgraph."""

    def __init__(self, values: Dict[NodeId, Any], key: Optional[str] = None):
        self.values = values
        self.key = key

    def __getitem__(self, node: NodeId) -> Any:
        return self.values[node]

    def __len__(self) -> int:
        return len(self.values)

    def items(self):
        return self.values.items()

    def Max(self, key: Optional[str] = None) -> Tuple[NodeId, Any]:
        """(node, value) with the maximum value; ``key`` accepted for API
        compatibility with the paper's listings."""
        if not self.values:
            raise AnalyticsError("Max over empty computed set")
        return max(self.values.items(), key=lambda kv: (kv[1], -kv[0]))

    def Min(self, key: Optional[str] = None) -> Tuple[NodeId, Any]:
        if not self.values:
            raise AnalyticsError("Min over empty computed set")
        return min(self.values.items(), key=lambda kv: (kv[1], kv[0]))

    def Mean(self) -> float:
        if not self.values:
            raise AnalyticsError("Mean over empty computed set")
        return sum(self.values.values()) / len(self.values)


class TemporalSeriesSet:
    """Result of ``NodeComputeTemporal`` / ``NodeComputeDelta``: one scalar
    time series per node/subgraph."""

    def __init__(self, series: Dict[NodeId, List[Tuple[TimePoint, Any]]]):
        self.series = series

    def __getitem__(self, node: NodeId) -> List[Tuple[TimePoint, Any]]:
        return self.series[node]

    def __len__(self) -> int:
        return len(self.series)

    def items(self):
        return self.series.items()

    def final_values(self) -> Dict[NodeId, Any]:
        return {n: s[-1][1] for n, s in self.series.items() if s}

    def aggregate(self, fn: Callable) -> Dict[NodeId, Any]:
        """Apply a TempAggregation function (or any series→value callable)
        to every node's series."""
        return {n: fn(s) for n, s in self.series.items() if s}

    def Max(self) -> Dict[NodeId, Tuple[TimePoint, Any]]:
        """Per-node (time, value) of the series maximum."""
        from repro.taf.aggregation import series_max

        return self.aggregate(series_max)

    def Min(self) -> Dict[NodeId, Tuple[TimePoint, Any]]:
        """Per-node (time, value) of the series minimum."""
        from repro.taf.aggregation import series_min

        return self.aggregate(series_min)

    def Mean(self) -> Dict[NodeId, float]:
        """Per-node mean of the series values."""
        from repro.taf.aggregation import series_mean

        return self.aggregate(series_mean)

    def Peak(self) -> Dict[NodeId, List[Tuple[TimePoint, Any]]]:
        """Per-node local maxima of the series."""
        from repro.taf.aggregation import peaks

        return self.aggregate(peaks)


class TGraph:
    """Temporal view of a SoN as one evolving graph (``son.GetGraph()``)."""

    def __init__(self, son: "SON") -> None:
        self._son = son

    def get_start_time(self) -> TimePoint:
        return self._son.get_start_time()

    def get_end_time(self) -> TimePoint:
        return self._son.get_end_time()

    def change_points(self) -> List[TimePoint]:
        return self._son.change_points()

    def graph_at(self, t: TimePoint) -> Graph:
        return self._son.GetGraph(t)

    def Evolution(
        self, metric: Callable[[Graph], Any], timepoints: TimepointsSpec = None
    ) -> List[Tuple[TimePoint, Any]]:
        """Sample ``metric`` over time (paper operator 8).  ``timepoints``
        may be an int (uniform sample count, as in Fig. 7c), a list, a
        selector function (Fig. 9a), or None for all change points."""
        points = _resolve_timepoints(timepoints, self)
        return [(t, metric(self.graph_at(t))) for t in points]


class SON:
    """A Set of Temporal Nodes (paper Definition 7)."""

    def __init__(
        self,
        handler: Optional[TGIHandler] = None,
        _nodes: Optional[List[NodeT]] = None,
        _interval: Optional[Tuple[TimePoint, TimePoint]] = None,
    ) -> None:
        self.handler = handler
        self._nodes = _nodes
        self._interval = _interval
        self._pre_id_predicates: List[Callable[[int, dict], bool]] = []
        self._deferred_predicates: List[Callable[[NodeT], bool]] = []
        self._filter_keys: Optional[List[str]] = None
        #: fetch accounting of the retrieval that materialized this set
        #: (None for unfetched or derived sets)
        self.fetch_stats = None

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def materialized(self) -> bool:
        return self._nodes is not None

    def collect(self) -> List[NodeT]:
        if self._nodes is None:
            raise QueryError("SoN not fetched yet; call fetch()")
        return self._nodes

    def __iter__(self) -> Iterator[NodeT]:
        return iter(self.collect())

    def __len__(self) -> int:
        return len(self.collect())

    def node_ids(self) -> List[NodeId]:
        return sorted(nt.node_id for nt in self.collect())

    def get_start_time(self) -> TimePoint:
        return min(nt.get_start_time() for nt in self.collect())

    def get_end_time(self) -> TimePoint:
        return max(nt.get_end_time() for nt in self.collect())

    def change_points(self) -> List[TimePoint]:
        """Union of all member change points (``GetAllChangePoints``)."""
        points: Set[TimePoint] = set()
        for nt in self.collect():
            points.update(nt.change_points())
        return sorted(points)

    # ------------------------------------------------------------------
    # specification / algebra operators
    # ------------------------------------------------------------------
    def Timeslice(self, arg, te: Optional[TimePoint] = None):
        """Restrict the temporal scope (paper operator 2).

        ``arg`` may be a time expression string (``"t >= Jan 1,2003 and
        t < Jan 1,2004"``), a single timepoint, an explicit ``(ts, te)``
        via two arguments, or a list of timepoints (returning a list of
        SoNs, one per point).
        """
        if isinstance(arg, (list, tuple)) and te is None and not isinstance(arg, str):
            return [self.Timeslice(t) for t in arg]
        if isinstance(arg, str):
            ts, tend = parse_time_expression(arg)
        elif te is not None:
            ts, tend = int(arg), int(te)
        else:
            ts = tend = int(arg)
        if self._nodes is None:
            out = self._clone(interval=(ts, tend))
            return out
        sliced = [nt.timeslice(ts, tend) for nt in self._nodes]
        return self._with_nodes(sliced)

    def Select(self, predicate) -> "SON":
        """Entity-centric filtering (paper operator 1).

        ``predicate`` is a string (``"id < 5000"``, ``'community = "A"'``)
        or a callable over :class:`NodeT`.  String predicates hold when
        *any* version of the node satisfies them.  Pure-id predicates on an
        unfetched SoN prune the universe before data is retrieved.
        """
        if isinstance(predicate, str):
            fields = predicate_fields(predicate)
            compiled = parse_entity_predicate(predicate)
            if self._nodes is None and fields == {"id"}:
                out = self._clone()
                out._pre_id_predicates.append(compiled)
                return out
            pred = _any_version_predicate(compiled)
        elif callable(predicate):
            pred = predicate
        else:
            raise QueryError("Select needs a string or callable predicate")
        if self._nodes is None:
            out = self._clone()
            out._deferred_predicates.append(pred)
            return out
        return self._with_nodes([nt for nt in self._nodes if pred(nt)])

    def Filter(self, *keys: str) -> "SON":
        """Attribute projection (the Fig. 6 'filter' along the attribute
        dimension): keep only the named attribute keys."""
        if not keys:
            raise QueryError("Filter needs at least one attribute key")
        if self._nodes is None:
            out = self._clone()
            out._filter_keys = list(keys)
            return out
        return self._with_nodes([nt.project_attrs(keys) for nt in self._nodes])

    def fetch(self) -> "SON":
        """Execute the accumulated specification against the TGI."""
        if self._nodes is not None:
            return self
        if self.handler is None:
            raise QueryError("cannot fetch a SoN without a TGIHandler")
        ts, te = self._effective_interval()
        universe = self.handler.known_nodes(ts, te)
        for pred in self._pre_id_predicates:
            universe = [n for n in universe if pred(n, {})]
        nodes = self.handler.fetch_node_histories(universe, ts, te)
        nodes = [
            nt
            for nt in nodes
            if nt.history.initial is not None or nt.history.events
        ]
        for pred in self._deferred_predicates:
            nodes = [nt for nt in nodes if pred(nt)]
        if self._filter_keys is not None:
            nodes = [nt.project_attrs(self._filter_keys) for nt in nodes]
        out = SON(self.handler, _nodes=nodes, _interval=(ts, te))
        out.fetch_stats = self.handler.last_fetch_stats
        return out

    def _effective_interval(self) -> Tuple[TimePoint, TimePoint]:
        if self._interval is not None:
            assert self.handler is not None
            lo, hi = self.handler.history_range()
            return max(self._interval[0], lo), min(self._interval[1], hi)
        assert self.handler is not None
        return self.handler.history_range()

    # lowercase aliases so paper-style operators read naturally from the
    # fluent session API (``session.nodes(...).timeslice(...).fetch()``)
    timeslice = Timeslice
    select = Select

    def _clone(self, interval=None) -> "SON":
        out = SON(self.handler, _interval=interval or self._interval)
        out._pre_id_predicates = list(self._pre_id_predicates)
        out._deferred_predicates = list(self._deferred_predicates)
        out._filter_keys = self._filter_keys
        return out

    def _with_nodes(self, nodes: List[NodeT]) -> "SON":
        return SON(self.handler, _nodes=nodes, _interval=self._interval)

    # ------------------------------------------------------------------
    # graph materialization + evolution
    # ------------------------------------------------------------------
    def GetGraph(self, tp: Optional[TimePoint] = None):
        """Paper operator 3: an in-memory graph over the SoN's nodes.

        With ``tp`` returns the static :class:`Graph` at that time;
        without, returns a :class:`TGraph` supporting ``Evolution``.
        """
        if tp is None:
            return TGraph(self)
        members: Dict[NodeId, Any] = {}
        for nt in self.collect():
            if nt.get_start_time() <= tp <= nt.get_end_time():
                state = nt.get_state_at(tp)
                if state is not None:
                    members[nt.node_id] = state
        g = Graph()
        for nid, state in members.items():
            g.add_node(nid, state.attrs)
        for nid, state in members.items():
            for nbr in state.E:
                if nbr in members and not g.has_edge(nid, nbr):
                    g.add_edge(nid, nbr)
        return g

    # ------------------------------------------------------------------
    # compute operators
    # ------------------------------------------------------------------
    def NodeCompute(
        self,
        f: Callable,
        key: Optional[str] = None,
        append: bool = False,
        at: Optional[TimePoint] = None,
    ) -> ComputedValues:
        """Paper operator 4 (map): apply ``f`` to each node's state.

        ``f`` receives the node's :class:`StaticNode` state as of ``at``
        (default: the slice start).  ``key``/``append`` are accepted for
        API compatibility and recorded on the result.
        """
        rdd = self._spark().parallelize(self.collect())

        def run(nt: NodeT):
            t = at if at is not None else nt.get_start_time()
            return (nt.node_id, _call_metric(f, nt.get_state_at(t), nt.node_id))

        return ComputedValues(dict(rdd.map(run).collect()), key=key)

    def NodeComputeTemporal(
        self,
        f: Callable,
        timepoints: TimepointsSpec = None,
    ) -> TemporalSeriesSet:
        """Paper operator 5: evaluate ``f`` on every version of each node."""
        rdd = self._spark().parallelize(self.collect())

        def run(nt: NodeT):
            points = _resolve_timepoints(timepoints, nt)
            series = [
                (t, _call_metric(f, nt.get_state_at(t), nt.node_id))
                for t in points
            ]
            return (nt.node_id, series)

        return TemporalSeriesSet(dict(rdd.map(run).collect()))

    def NodeComputeDelta(
        self,
        f: Callable,
        f_delta: Callable,
        timepoints: TimepointsSpec = None,
    ) -> TemporalSeriesSet:
        """Paper operator 6: evaluate ``f`` once per node, then update the
        value incrementally with ``f_delta(prev_state, prev_value, event)``
        instead of recomputing per version."""
        rdd = self._spark().parallelize(self.collect())

        def run(nt: NodeT):
            ts = nt.get_start_time()
            state = nt.get_state_at(ts)
            value = _call_metric(f, state, nt.node_id)
            series: List[Tuple[TimePoint, Any]] = [(ts, value)]
            wanted = (
                None
                if timepoints is None
                else set(_resolve_timepoints(timepoints, nt))
            )
            for ev in nt.events:
                value = f_delta(state, value, ev)
                state = evolve_node_state(state, ev, nt.node_id)
                if wanted is None or ev.time in wanted:
                    if series[-1][0] == ev.time:
                        series[-1] = (ev.time, value)
                    else:
                        series.append((ev.time, value))
            return (nt.node_id, series)

        return TemporalSeriesSet(dict(rdd.map(run).collect()))

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    @staticmethod
    def Compare(
        a: "SON",
        b: "SON",
        scalar: Callable[[Graph], Any],
        timepoints: Optional[Callable[["SON", "SON"], List[TimePoint]]] = None,
    ) -> Tuple[List[Any], List[Any]]:
        """Paper operator 7: evaluate a scalar function over both operands
        at common timepoints and return the two value series."""
        if timepoints is None:
            points = sorted(set(a.change_points()) | set(b.change_points())
                            | {a.get_start_time(), b.get_start_time()})
        else:
            points = sorted(set(timepoints(a, b)))
        series_a = [scalar(a.GetGraph(t)) for t in points]
        series_b = [scalar(b.GetGraph(t)) for t in points]
        return series_a, series_b

    @staticmethod
    def CompareNodes(
        a: "SON",
        b: "SON",
        scalar: Callable,
        t: Optional[TimePoint] = None,
    ) -> Dict[NodeId, Tuple[Any, Any]]:
        """Node-wise comparison: (value in a, value in b) per shared node."""
        va = a.NodeCompute(scalar, at=t)
        vb = b.NodeCompute(scalar, at=t)
        return {
            n: (va[n], vb[n]) for n in set(va.values) & set(vb.values)
        }

    @staticmethod
    def count() -> Callable[[Graph], int]:
        """Scalar function counting alive nodes (``SON.count()`` in the
        paper's Compare example, Fig. 7b)."""
        return lambda g: g.num_nodes

    def _spark(self):
        if self.handler is not None:
            return self.handler.sc
        from repro.spark.rdd import SparkContext

        return SparkContext(num_workers=1)


def _any_version_predicate(
    compiled: Callable[[int, dict], bool]
) -> Callable[[NodeT], bool]:
    def pred(nt: NodeT) -> bool:
        for _t, state in nt.get_versions():
            if state is not None and compiled(nt.node_id, state.attrs):
                return True
        return False

    return pred


class SOTS:
    """A Set of Temporal Subgraphs: k-hop neighborhoods around a set of
    center nodes, evolving over time (paper Definition 7 analogue)."""

    def __init__(
        self,
        k: int = 1,
        handler: Optional[TGIHandler] = None,
        _subgraphs: Optional[List[SubgraphT]] = None,
        _interval: Optional[Tuple[TimePoint, TimePoint]] = None,
    ) -> None:
        if k < 1:
            raise QueryError("subgraph radius k must be >= 1")
        self.k = k
        self.handler = handler
        self._subgraphs = _subgraphs
        self._interval = _interval
        self._pre_id_predicates: List[Callable[[int, dict], bool]] = []
        #: fetch accounting of the retrieval that materialized this set
        self.fetch_stats = None

    # -- specification ---------------------------------------------------
    def Timeslice(self, arg, te: Optional[TimePoint] = None):
        if isinstance(arg, str):
            ts, tend = parse_time_expression(arg)
        elif te is not None:
            ts, tend = int(arg), int(te)
        else:
            ts = tend = int(arg)
        if self._subgraphs is None:
            out = SOTS(self.k, self.handler, _interval=(ts, tend))
            out._pre_id_predicates = list(self._pre_id_predicates)
            return out
        return SOTS(
            self.k,
            self.handler,
            _subgraphs=[sg.timeslice(ts, tend) for sg in self._subgraphs],
            _interval=(ts, tend),
        )

    def Select(self, predicate) -> "SOTS":
        """Restrict the *centers*; pure-id string predicates prune before
        fetch, callables filter after."""
        if self._subgraphs is None:
            if isinstance(predicate, str):
                if predicate_fields(predicate) != {"id"}:
                    raise QueryError(
                        "pre-fetch SOTS Select supports id predicates only"
                    )
                out = SOTS(self.k, self.handler, _interval=self._interval)
                out._pre_id_predicates = (
                    self._pre_id_predicates
                    + [parse_entity_predicate(predicate)]
                )
                return out
            raise QueryError("pre-fetch SOTS Select needs a string predicate")
        if not callable(predicate):
            raise QueryError("post-fetch SOTS Select needs a callable")
        return SOTS(
            self.k,
            self.handler,
            _subgraphs=[sg for sg in self._subgraphs if predicate(sg)],
            _interval=self._interval,
        )

    def fetch(self, centers: Optional[Sequence[NodeId]] = None) -> "SOTS":
        if self._subgraphs is not None:
            return self
        if self.handler is None:
            raise QueryError("cannot fetch a SoTS without a TGIHandler")
        ts, te = self._effective_interval()
        universe = list(centers) if centers is not None else (
            self.handler.known_nodes(ts, te)
        )
        for pred in self._pre_id_predicates:
            universe = [n for n in universe if pred(n, {})]
        subgraphs = self.handler.fetch_subgraphs(universe, self.k, ts, te)
        out = SOTS(self.k, self.handler, _subgraphs=subgraphs,
                   _interval=(ts, te))
        out.fetch_stats = self.handler.last_fetch_stats
        return out

    def _effective_interval(self) -> Tuple[TimePoint, TimePoint]:
        assert self.handler is not None
        lo, hi = self.handler.history_range()
        if self._interval is None:
            return lo, hi
        return max(self._interval[0], lo), min(self._interval[1], hi)

    # lowercase aliases matching the fluent session API
    timeslice = Timeslice
    select = Select

    # -- materialized access ------------------------------------------------
    def collect(self) -> List[SubgraphT]:
        if self._subgraphs is None:
            raise QueryError("SoTS not fetched yet; call fetch()")
        return self._subgraphs

    def __iter__(self) -> Iterator[SubgraphT]:
        return iter(self.collect())

    def __len__(self) -> int:
        return len(self.collect())

    # -- compute operators ----------------------------------------------------
    def NodeCompute(
        self,
        f: Callable,
        key: Optional[str] = None,
        append: bool = False,
        at: Optional[TimePoint] = None,
    ) -> ComputedValues:
        """Apply ``f`` to each subgraph's state (``f(graph)`` or
        ``f(graph, center)``) as of ``at`` / the slice start."""
        rdd = self._spark().parallelize(self.collect())

        def run(sg: SubgraphT):
            t = at if at is not None else sg.get_start_time()
            g = sg.get_version_at(t)
            return (sg.center, _call_metric(f, g, sg.center))

        return ComputedValues(dict(rdd.map(run).collect()), key=key)

    def NodeComputeTemporal(
        self,
        f: Callable,
        timepoints: TimepointsSpec = None,
    ) -> TemporalSeriesSet:
        """Recompute ``f`` afresh on the subgraph at every change point
        (cost O(N·T) — the contrast measured in Fig. 17)."""
        rdd = self._spark().parallelize(self.collect())

        def run(sg: SubgraphT):
            points = _resolve_timepoints(timepoints, sg)
            series = [
                (t, _call_metric(f, sg.members_induced_at(t), sg.center))
                for t in points
            ]
            return (sg.center, series)

        return TemporalSeriesSet(dict(rdd.map(run).collect()))

    def NodeComputeDelta(
        self,
        f: Callable,
        f_delta: Callable,
        timepoints: TimepointsSpec = None,
    ) -> TemporalSeriesSet:
        """Incremental evaluation: compute ``f`` once on the initial
        subgraph state, then fold each event through
        ``f_delta(graph_before_event, prev_value, event)`` (cost O(N+T))."""
        rdd = self._spark().parallelize(self.collect())

        def run(sg: SubgraphT):
            ts = sg.get_start_time()
            g = sg.members_induced_at(ts)
            value = _call_metric(f, g, sg.center)
            series: List[Tuple[TimePoint, Any]] = [(ts, value)]
            wanted = (
                None
                if timepoints is None
                else set(_resolve_timepoints(timepoints, sg))
            )
            for ev in sg.member_events():
                if ev.time <= ts:
                    continue
                value = f_delta(g, value, ev)
                g.apply_event(ev)
                if wanted is None or ev.time in wanted:
                    if series[-1][0] == ev.time:
                        series[-1] = (ev.time, value)
                    else:
                        series.append((ev.time, value))
            return (sg.center, series)

        return TemporalSeriesSet(dict(rdd.map(run).collect()))

    def _spark(self):
        if self.handler is not None:
            return self.handler.sc
        from repro.spark.rdd import SparkContext

        return SparkContext(num_workers=1)
