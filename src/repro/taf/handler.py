"""TGIHandler: the bridge between TAF and the TGI cluster (paper Fig. 10).

The handler owns a TGI connection plus a Spark context and implements the
parallel-fetch protocol: the node universe is split across the analytics
cluster's partitions, each partition fetches its share of temporal nodes
directly from the store (no aggregation bottleneck at the query manager),
and the simulated fetch time is the makespan over the analytics workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import IndexError_
from repro.graph.events import Event
from repro.index.interface import NodeHistory, evolve_node_state
from repro.index.tgi.index import TGI
from repro.kvstore.cost import FetchStats
from repro.spark.rdd import SparkContext, lpt_makespan
from repro.taf.node_t import NodeT, SubgraphT
from repro.types import NodeId, TimePoint, canonical_edge


@dataclass
class ParallelFetchStats:
    """Accounting for one parallel SoN/SoTS fetch.

    ``partition_sim_ms`` holds the simulated store-side latency incurred by
    each analytics partition; the fetch completes at the LPT makespan over
    the Spark workers (plus nothing else — the direct worker↔store protocol
    avoids a master bottleneck, Fig. 10)."""

    partition_sim_ms: List[float] = field(default_factory=list)
    num_workers: int = 1
    requests: int = 0
    bytes_read: int = 0
    rounds: int = 0
    cache_hits: int = 0

    @property
    def sim_time_ms(self) -> float:
        return lpt_makespan(self.partition_sim_ms, self.num_workers)

    def absorb(self, fetch: FetchStats) -> None:
        """Fold one store-side fetch into the aggregate counters."""
        self.requests += fetch.num_requests
        self.bytes_read += fetch.bytes_read
        self.rounds += fetch.rounds
        self.cache_hits += fetch.cache_hits


class TGIHandler:
    """Connection handle used by SoN/SoTS (``TGIHandler(tgiconf, name, sc)``
    in the paper's listings; here it wraps a built :class:`TGI` directly).

    Args:
        tgi: the temporal graph index to fetch from.
        spark_context: analytics cluster (worker count drives the
            simulated parallel-fetch makespan).
        clients_per_partition: TGI fetch clients each partition uses.
    """

    def __init__(
        self,
        tgi: TGI,
        spark_context: Optional[SparkContext] = None,
        clients_per_partition: int = 1,
    ) -> None:
        self.tgi = tgi
        self.sc = spark_context or SparkContext()
        self.clients_per_partition = clients_per_partition
        self.last_fetch_stats = ParallelFetchStats()

    # ------------------------------------------------------------------
    def known_nodes(
        self, ts: TimePoint, te: TimePoint
    ) -> List[NodeId]:
        """All node ids alive at any point overlapping ``[ts, te]``."""
        out: Set[NodeId] = set()
        for span in self.tgi._spans:
            if span.t_end <= ts or span.t_start > te:
                continue
            out.update(span.node_pid)
        return sorted(out)

    def history_range(self) -> Tuple[TimePoint, TimePoint]:
        if self.tgi._t_min is None or self.tgi._t_max is None:
            raise ValueError("TGI is empty")
        return self.tgi._t_min, self.tgi._t_max

    # ------------------------------------------------------------------
    def fetch_node_histories(
        self, node_ids: Sequence[NodeId], ts: TimePoint, te: TimePoint
    ) -> List[NodeT]:
        """Parallel fetch of temporal nodes (the SoN data path).

        Each analytics partition issues one *batched* history fetch for
        its whole chunk (:meth:`TGI.get_node_histories`), so a partition
        costs O(1) store rounds instead of O(nodes)."""
        stats = ParallelFetchStats(num_workers=self.sc.num_workers)
        parts = self.sc.parallelize(node_ids).num_partitions
        chunks: List[List[NodeId]] = [[] for _ in range(parts)]
        for i, nid in enumerate(node_ids):
            chunks[i % parts].append(nid)
        out: List[NodeT] = []
        for chunk in chunks:
            if not chunk:
                continue
            histories = self.tgi.get_node_histories(
                chunk, ts, te, clients=self.clients_per_partition
            )
            fetch = self.tgi.last_fetch_stats
            stats.absorb(fetch)
            stats.partition_sim_ms.append(fetch.sim_time_ms)
            out.extend(NodeT(history) for history in histories)
        self.last_fetch_stats = stats
        return out

    # ------------------------------------------------------------------
    def fetch_subgraph(
        self, center: NodeId, k: int, ts: TimePoint, te: TimePoint
    ) -> Optional[SubgraphT]:
        """Fetch one temporal k-hop subgraph.

        Member discovery is level-wise *over time*: starting from the
        center, each hop adds every node that is a neighbor at any point
        during ``[ts, te]``, so the SubgraphT covers the neighborhood as it
        evolves; ``get_version_at`` prunes back to the exact k-hop members
        at each queried time.
        """
        histories: Dict[NodeId, NodeT] = {}
        fetch_total = FetchStats()

        def fetch_batch(nids: Sequence[NodeId]) -> List[NodeT]:
            """One batched history fetch for a whole frontier level."""
            got = self.tgi.get_node_histories(
                list(nids), ts, te, clients=self.clients_per_partition
            )
            fetch_total.merge(self.tgi.last_fetch_stats)
            return [NodeT(history) for history in got]

        def finish() -> ParallelFetchStats:
            stats = ParallelFetchStats(num_workers=self.sc.num_workers)
            stats.partition_sim_ms.append(fetch_total.sim_time_ms)
            stats.absorb(fetch_total)
            self.last_fetch_stats = stats
            return stats

        root = fetch_batch([center])[0]
        if root.history.initial is None and not root.history.events:
            finish()  # the root probe still cost a fetch; report it
            return None
        histories[center] = root
        frontier = {center}
        for _ in range(k):
            nbrs: Set[NodeId] = set()
            for nid in frontier:
                nt = histories[nid]
                state = nt.history.initial
                if state is not None:
                    nbrs |= state.E
                for ev in nt.events:
                    state = evolve_node_state(state, ev, nid)
                    if state is not None:
                        nbrs |= state.E
            new = sorted(nbrs - set(histories))
            if not new:
                break
            for nid, nt in zip(new, fetch_batch(new)):
                histories[nid] = nt
            frontier = set(new)

        # initial edge attributes among members, from the store's k-hop view
        edge_attrs: Dict[Tuple[NodeId, NodeId], dict] = {}
        try:
            g0 = self.tgi.get_khop(center, ts, k=k,
                                   clients=self.clients_per_partition)
            fetch_total.merge(self.tgi.last_fetch_stats)
            for (u, v) in g0.edges():
                attrs = g0.edge_attrs(u, v)
                if attrs:
                    edge_attrs[canonical_edge(u, v)] = dict(attrs)
        except IndexError_:
            pass  # center not alive at ts; attrs resolved from events

        finish()
        return SubgraphT(center, k, histories, edge_attrs)

    def fetch_subgraphs(
        self,
        centers: Sequence[NodeId],
        k: int,
        ts: TimePoint,
        te: TimePoint,
    ) -> List[SubgraphT]:
        """Parallel fetch of temporal subgraphs (the SoTS data path)."""
        total = ParallelFetchStats(num_workers=self.sc.num_workers)
        parts = self.sc.parallelize(centers).num_partitions
        chunks: List[List[NodeId]] = [[] for _ in range(parts)]
        for i, nid in enumerate(centers):
            chunks[i % parts].append(nid)
        out: List[SubgraphT] = []
        for chunk in chunks:
            sim_ms = 0.0
            for nid in chunk:
                sg = self.fetch_subgraph(nid, k, ts, te)
                fetch = self.last_fetch_stats
                sim_ms += fetch.sim_time_ms
                total.requests += fetch.requests
                total.bytes_read += fetch.bytes_read
                total.rounds += fetch.rounds
                total.cache_hits += fetch.cache_hits
                if sg is not None:
                    out.append(sg)
            total.partition_sim_ms.append(sim_ms)
        self.last_fetch_stats = total
        return out
