"""TGIHandler: the bridge between TAF and the TGI cluster (paper Fig. 10).

The handler owns a TGI connection plus a Spark context and implements the
parallel-fetch protocol: the node universe is split across the analytics
cluster's partitions, each partition fetches its share of temporal nodes
directly from the store (no aggregation bottleneck at the query manager),
and the simulated fetch time is the makespan over the analytics workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.deltas.columnar import decoded_events_total
from repro.errors import IndexError_
from repro.exec import FetchPlan
from repro.graph.events import Event
from repro.index.interface import NodeHistory, evolve_node_state
from repro.index.tgi.index import TGI
from repro.kvstore.cost import FetchStats
from repro.spark.rdd import SparkContext, lpt_makespan
from repro.taf.node_t import NodeT, SubgraphT
from repro.types import NodeId, TimePoint, canonical_edge


def _neighbors_over_time(nt: NodeT) -> Set[NodeId]:
    """Every node that is a neighbor of ``nt`` at any point it covers."""
    nbrs: Set[NodeId] = set()
    state = nt.history.initial
    if state is not None:
        nbrs |= state.E
    for ev in nt.events:
        state = evolve_node_state(state, ev, nt.node_id)
        if state is not None:
            nbrs |= state.E
    return nbrs


@dataclass
class ParallelFetchStats:
    """Accounting for one parallel SoN/SoTS fetch.

    ``partition_sim_ms`` holds the simulated store-side latency incurred by
    each analytics partition; the fetch completes at the LPT makespan over
    the Spark workers (plus nothing else — the direct worker↔store protocol
    avoids a master bottleneck, Fig. 10).  When the partitions' plans ran
    *pipelined* on one shared execution timeline, ``pipelined_ms`` carries
    the timeline makespan and overrides the LPT schedule (the per-plan
    completion times in ``partition_sim_ms`` already overlap)."""

    partition_sim_ms: List[float] = field(default_factory=list)
    num_workers: int = 1
    requests: int = 0
    bytes_read: int = 0
    rounds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes_saved: int = 0
    overlap_saved_ms: float = 0.0
    apply_ms: float = 0.0
    checkpoint_hits: int = 0
    checkpoint_misses: int = 0
    checkpoint_near_hits: int = 0
    decoded_events: int = 0
    coalesced_hits: int = 0
    coalesced_bytes_saved: int = 0
    merged_rounds: int = 0
    pipelined_ms: Optional[float] = None

    @property
    def sim_time_ms(self) -> float:
        if self.pipelined_ms is not None:
            return self.pipelined_ms
        return lpt_makespan(self.partition_sim_ms, self.num_workers)

    def absorb(self, fetch: FetchStats) -> None:
        """Fold one store-side fetch into the aggregate counters."""
        self.requests += fetch.num_requests
        self.bytes_read += fetch.bytes_read
        self.rounds += fetch.rounds
        self.cache_hits += fetch.cache_hits
        self.cache_misses += fetch.cache_misses
        self.cache_bytes_saved += fetch.cache_bytes_saved
        self.overlap_saved_ms += fetch.overlap_saved_ms
        self.apply_ms += fetch.apply_ms
        self.checkpoint_hits += fetch.checkpoint_hits
        self.checkpoint_misses += fetch.checkpoint_misses
        self.checkpoint_near_hits += fetch.checkpoint_near_hits
        self.decoded_events += fetch.decoded_events
        self.coalesced_hits += fetch.coalesced_hits
        self.coalesced_bytes_saved += fetch.coalesced_bytes_saved
        self.merged_rounds += fetch.merged_rounds


class TGIHandler:
    """Connection handle used by SoN/SoTS (``TGIHandler(tgiconf, name, sc)``
    in the paper's listings; here it wraps a built :class:`TGI` directly).

    .. deprecated::
        Direct construction is the legacy wiring path.  Prefer
        :class:`repro.session.GraphSession` / ``open_graph``, which owns
        the handler, shares the cross-index delta cache, and prices plans
        before fetching; an existing handler converts via
        :meth:`session`.

    Args:
        tgi: the temporal graph index to fetch from.
        spark_context: analytics cluster (worker count drives the
            simulated parallel-fetch makespan).
        clients_per_partition: TGI fetch clients each partition uses.
    """

    def __init__(
        self,
        tgi: TGI,
        spark_context: Optional[SparkContext] = None,
        clients_per_partition: int = 1,
    ) -> None:
        self.tgi = tgi
        self.sc = spark_context or SparkContext()
        self.clients_per_partition = clients_per_partition
        self.last_fetch_stats = ParallelFetchStats()

    def session(self, **kwargs):
        """Wrap this handler in a :class:`~repro.session.GraphSession`
        (the preferred query facade); the session reuses this handler's
        index, Spark context and client count."""
        from repro.session import GraphSession

        return GraphSession.from_handler(self, **kwargs)

    # ------------------------------------------------------------------
    def known_nodes(
        self, ts: TimePoint, te: TimePoint
    ) -> List[NodeId]:
        """All node ids alive at any point overlapping ``[ts, te]``."""
        out: Set[NodeId] = set()
        for span in self.tgi._spans:
            if span.t_end <= ts or span.t_start > te:
                continue
            out.update(span.node_pid)
        return sorted(out)

    def history_range(self) -> Tuple[TimePoint, TimePoint]:
        if self.tgi._t_min is None or self.tgi._t_max is None:
            raise ValueError("TGI is empty")
        return self.tgi._t_min, self.tgi._t_max

    # ------------------------------------------------------------------
    def fetch_node_histories(
        self, node_ids: Sequence[NodeId], ts: TimePoint, te: TimePoint
    ) -> List[NodeT]:
        """Parallel fetch of temporal nodes (the SoN data path).

        Each analytics partition issues one *batched* history fetch for
        its whole chunk (:meth:`TGI.get_node_histories`), so a partition
        costs O(1) store rounds instead of O(nodes).  With
        ``TGIConfig.pipeline`` enabled, all chunk plans are submitted
        through a single :meth:`PlanExecutor.execute_many` call, so the
        chunks' 2-round plans overlap on one shared execution timeline —
        the same async-client model the SoTS path uses — instead of
        running strictly one after another."""
        stats = ParallelFetchStats(num_workers=self.sc.num_workers)
        parts = self.sc.parallelize(node_ids).num_partitions
        chunks: List[List[NodeId]] = [[] for _ in range(parts)]
        for i, nid in enumerate(node_ids):
            chunks[i % parts].append(nid)
        chunks = [chunk for chunk in chunks if chunk]
        out: List[NodeT] = []
        if self.tgi.config.pipeline and chunks:
            decoded0 = decoded_events_total()
            plans = []
            finalizers = []
            for chunk in chunks:
                plan, finalize, ckpt = self.tgi._node_histories_plan(
                    chunk, ts, te
                )
                plans.append(plan)
                finalizers.append(finalize)
                stats.checkpoint_hits += ckpt["hits"]
                stats.checkpoint_misses += ckpt["misses"]
                stats.checkpoint_near_hits += ckpt["near_hits"]
            pipelined = self.tgi.executor.execute_many(
                plans, clients=self.clients_per_partition, pipelined=True,
            )
            for finalize, result in zip(finalizers, pipelined.results):
                out.extend(NodeT(h) for h in finalize(result.values))
                # per-plan attribution: when this chunk's plan completed
                # on the shared timeline
                stats.partition_sim_ms.append(result.stats.sim_time_ms)
            stats.absorb(pipelined.stats)
            # the finalizers above extracted per-node events from the
            # fetched eventlists — count what they forced to materialize
            stats.decoded_events += decoded_events_total() - decoded0
            stats.pipelined_ms = pipelined.stats.sim_time_ms
            self.last_fetch_stats = stats
            return out
        for chunk in chunks:
            histories = self.tgi.get_node_histories(
                chunk, ts, te, clients=self.clients_per_partition
            )
            fetch = self.tgi.last_fetch_stats
            stats.absorb(fetch)
            stats.partition_sim_ms.append(fetch.sim_time_ms)
            out.extend(NodeT(history) for history in histories)
        self.last_fetch_stats = stats
        return out

    # ------------------------------------------------------------------
    def fetch_subgraph(
        self, center: NodeId, k: int, ts: TimePoint, te: TimePoint
    ) -> Optional[SubgraphT]:
        """Fetch one temporal k-hop subgraph.

        Member discovery is level-wise *over time*: starting from the
        center, each hop adds every node that is a neighbor at any point
        during ``[ts, te]``, so the SubgraphT covers the neighborhood as it
        evolves; ``get_version_at`` prunes back to the exact k-hop members
        at each queried time.
        """
        histories: Dict[NodeId, NodeT] = {}
        fetch_total = FetchStats()

        def fetch_batch(nids: Sequence[NodeId]) -> List[NodeT]:
            """One batched history fetch for a whole frontier level."""
            got = self.tgi.get_node_histories(
                list(nids), ts, te, clients=self.clients_per_partition
            )
            fetch_total.merge(self.tgi.last_fetch_stats)
            return [NodeT(history) for history in got]

        def finish() -> ParallelFetchStats:
            stats = ParallelFetchStats(num_workers=self.sc.num_workers)
            stats.partition_sim_ms.append(fetch_total.sim_time_ms)
            stats.absorb(fetch_total)
            self.last_fetch_stats = stats
            return stats

        root = fetch_batch([center])[0]
        if root.history.initial is None and not root.history.events:
            finish()  # the root probe still cost a fetch; report it
            return None
        histories[center] = root
        frontier = {center}
        for _ in range(k):
            nbrs: Set[NodeId] = set()
            for nid in frontier:
                nbrs |= _neighbors_over_time(histories[nid])
            new = sorted(nbrs - set(histories))
            if not new:
                break
            for nid, nt in zip(new, fetch_batch(new)):
                histories[nid] = nt
            frontier = set(new)

        # initial edge attributes among members, from the store's k-hop view
        edge_attrs: Dict[Tuple[NodeId, NodeId], dict] = {}
        try:
            g0 = self.tgi.get_khop(center, ts, k=k,
                                   clients=self.clients_per_partition)
            fetch_total.merge(self.tgi.last_fetch_stats)
            for (u, v) in g0.edges():
                attrs = g0.edge_attrs(u, v)
                if attrs:
                    edge_attrs[canonical_edge(u, v)] = dict(attrs)
        except IndexError_:
            # center not alive at ts; attrs resolved from events — but the
            # probe may have fetched rows before discovering that, so its
            # accounting still counts
            fetch_total.merge(self.tgi.last_fetch_stats)

        finish()
        return SubgraphT(center, k, histories, edge_attrs)

    def fetch_subgraphs(
        self,
        centers: Sequence[NodeId],
        k: int,
        ts: TimePoint,
        te: TimePoint,
    ) -> List[SubgraphT]:
        """Parallel fetch of temporal subgraphs (the SoTS data path).

        With ``TGIConfig.pipeline`` enabled, each analytics chunk is driven
        through the shared-frontier batched path
        (:meth:`_fetch_subgraph_batch`): every BFS level fetches the whole
        chunk's frontier in one batched history plan, the k-hop edge-attr
        plan runs overlapped with the expansion, and the chunk costs
        O(levels) rounds instead of O(centers · levels).  The default
        (non-pipelined) configuration keeps the strictly sequential
        per-center schedule, reproducing its fetch counts exactly.
        """
        total = ParallelFetchStats(num_workers=self.sc.num_workers)
        parts = self.sc.parallelize(centers).num_partitions
        chunks: List[List[NodeId]] = [[] for _ in range(parts)]
        for i, nid in enumerate(centers):
            chunks[i % parts].append(nid)
        out: List[SubgraphT] = []
        for chunk in chunks:
            if not chunk:
                continue
            if self.tgi.config.pipeline:
                subgraphs, fetch = self._fetch_subgraph_batch(
                    chunk, k, ts, te
                )
                total.absorb(fetch)
                total.partition_sim_ms.append(fetch.sim_time_ms)
                out.extend(sg for sg in subgraphs if sg is not None)
                continue
            sim_ms = 0.0
            for nid in chunk:
                sg = self.fetch_subgraph(nid, k, ts, te)
                fetch = self.last_fetch_stats
                sim_ms += fetch.sim_time_ms
                total.requests += fetch.requests
                total.bytes_read += fetch.bytes_read
                total.rounds += fetch.rounds
                total.cache_hits += fetch.cache_hits
                total.cache_misses += fetch.cache_misses
                total.cache_bytes_saved += fetch.cache_bytes_saved
                total.apply_ms += fetch.apply_ms
                total.checkpoint_hits += fetch.checkpoint_hits
                total.checkpoint_misses += fetch.checkpoint_misses
                total.checkpoint_near_hits += fetch.checkpoint_near_hits
                if sg is not None:
                    out.append(sg)
            total.partition_sim_ms.append(sim_ms)
        self.last_fetch_stats = total
        return out

    def _fetch_subgraph_batch(
        self,
        centers: Sequence[NodeId],
        k: int,
        ts: TimePoint,
        te: TimePoint,
    ) -> Tuple[List[Optional[SubgraphT]], FetchStats]:
        """Whole-chunk SoTS fetch on the shared frontier.

        Builds two independent plans and executes them pipelined on one
        shared timeline: (a) the temporal-member BFS — each hop fetches the
        union of every center's new frontier nodes in one batched history
        plan (levels grow the plan dynamically via factories); (b) the
        shared-frontier k-hop plan supplying the initial edge attributes
        at ``ts``.  Per-center results are identical to
        :meth:`fetch_subgraph`; only the fetch schedule differs.
        """
        tgi = self.tgi
        order = list(dict.fromkeys(centers))
        histories: Dict[NodeId, NodeT] = {}
        members: Dict[NodeId, Set[NodeId]] = {c: {c} for c in order}
        frontier: Dict[NodeId, Set[NodeId]] = {c: {c} for c in order}

        plan_a = FetchPlan(
            f"subgraph-histories({len(order)} centers, k={k}, "
            f"ts={ts}, te={te})"
        )

        ckpt_counters: List[Dict[str, int]] = []

        def add_level(nodes: List[NodeId], hops_done: int) -> None:
            """Append one batched history fetch for ``nodes`` plus the
            factory that records the results and expands further hops."""
            subplan, finalize, ckpt = tgi._node_histories_plan(nodes, ts, te)
            ckpt_counters.append(ckpt)
            plan_a.stages.extend(subplan.stages)

            def expand(values: Dict) -> None:
                for nid, history in zip(nodes, finalize(values)):
                    histories[nid] = NodeT(history)
                hop = hops_done
                while hop < k:
                    hop += 1
                    fetch: Set[NodeId] = set()
                    for c in order:
                        nbrs: Set[NodeId] = set()
                        for nid in frontier[c]:
                            nbrs |= _neighbors_over_time(histories[nid])
                        cand = nbrs - members[c]
                        members[c] |= cand
                        frontier[c] = cand
                        fetch |= cand
                    new = sorted(n for n in fetch if n not in histories)
                    if new:
                        add_level(new, hop)
                        return None
                    if not any(frontier.values()):
                        return None
                return None

            plan_a.add_factory(expand)

        add_level(list(order), 0)
        plan_b, finalize_b, ckpt_b = tgi._khops_plan(order, ts, k)
        ckpt_counters.append(ckpt_b)
        pipelined = tgi.executor.execute_many(
            [plan_a, plan_b], clients=self.clients_per_partition,
            pipelined=True,
        )
        khop_graphs = dict(zip(order, finalize_b(pipelined.results[1].values)))
        for ckpt in ckpt_counters:
            pipelined.stats.checkpoint_hits += ckpt["hits"]
            pipelined.stats.checkpoint_misses += ckpt["misses"]
            pipelined.stats.checkpoint_near_hits += ckpt["near_hits"]

        subgraphs: Dict[NodeId, Optional[SubgraphT]] = {}
        for center in order:
            root = histories[center]
            if root.history.initial is None and not root.events:
                subgraphs[center] = None
                continue
            edge_attrs: Dict[Tuple[NodeId, NodeId], dict] = {}
            g0 = khop_graphs.get(center)
            if g0 is not None:
                for (u, v) in g0.edges():
                    attrs = g0.edge_attrs(u, v)
                    if attrs:
                        edge_attrs[canonical_edge(u, v)] = dict(attrs)
            subgraphs[center] = SubgraphT(
                center, k,
                {nid: histories[nid] for nid in members[center]},
                edge_attrs,
            )
        return [subgraphs[c] for c in centers], pipelined.stats
