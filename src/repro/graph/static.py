"""In-memory property graph: the materialized form of one snapshot.

``Graph`` is the object handed to user analysis code (TAF's ``Graph``
operator returns one).  It supports node/edge attributes, directed or
undirected semantics, event application/replay, and structural queries used
by the retrieval algorithms (neighbors, induced subgraphs, k-hop
neighborhoods).
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import EventError, GraphError
from repro.graph.events import Event, EventKind
from repro.types import AttrMap, EdgeId, NodeId, TimePoint, canonical_edge

# EventKind values as plain ints for the columnar bulk-apply kernel (the
# packed kinds column stores the raw uint8).
_K_NODE_ADD = int(EventKind.NODE_ADD)
_K_NODE_DELETE = int(EventKind.NODE_DELETE)
_K_EDGE_ADD = int(EventKind.EDGE_ADD)
_K_EDGE_DELETE = int(EventKind.EDGE_DELETE)
_K_NODE_ATTR_SET = int(EventKind.NODE_ATTR_SET)
_K_NODE_ATTR_DEL = int(EventKind.NODE_ATTR_DEL)
_K_EDGE_ATTR_SET = int(EventKind.EDGE_ATTR_SET)
_K_EDGE_ATTR_DEL = int(EventKind.EDGE_ATTR_DEL)


class Graph:
    """A static property graph (one snapshot of the evolving graph).

    Nodes carry attribute maps; edges carry attribute maps and are
    undirected by default (the paper's experiments use undirected graphs;
    direction is supported because the data model in Sec. 3.1 includes it).
    """

    __slots__ = ("directed", "_nodes", "_adj", "_edge_attrs")

    def __init__(self, directed: bool = False) -> None:
        self.directed = directed
        self._nodes: Dict[NodeId, AttrMap] = {}
        # adjacency: node -> set of neighbor ids (out-neighbors if directed)
        self._adj: Dict[NodeId, Set[NodeId]] = {}
        self._edge_attrs: Dict[EdgeId, AttrMap] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, attrs: Optional[AttrMap] = None) -> None:
        """Add ``node``; re-adding an existing node resets its attributes."""
        self._nodes[node] = dict(attrs) if attrs else {}
        self._adj.setdefault(node, set())

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._nodes:
            raise GraphError(f"node {node} not in graph")
        for nbr in list(self._adj[node]):
            self.remove_edge(node, nbr)
        if self.directed:
            # incoming edges are not tracked in _adj[node]; scan for them
            for (u, v) in [e for e in self._edge_attrs if e[1] == node]:
                self.remove_edge(u, v)
        del self._nodes[node]
        del self._adj[node]

    def add_edge(
        self, u: NodeId, v: NodeId, attrs: Optional[AttrMap] = None
    ) -> None:
        """Add edge ``(u, v)``; both endpoints must already exist."""
        if u not in self._nodes or v not in self._nodes:
            raise GraphError(f"edge ({u}, {v}) references a missing node")
        eid = canonical_edge(u, v, self.directed)
        self._edge_attrs[eid] = dict(attrs) if attrs else {}
        self._adj[u].add(v)
        if not self.directed:
            self._adj[v].add(u)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        eid = canonical_edge(u, v, self.directed)
        if eid not in self._edge_attrs:
            raise GraphError(f"edge ({u}, {v}) not in graph")
        del self._edge_attrs[eid]
        self._adj[u].discard(v)
        if not self.directed:
            self._adj[v].discard(u)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def has_node(self, node: NodeId) -> bool:
        return node in self._nodes

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return canonical_edge(u, v, self.directed) in self._edge_attrs

    def node_attrs(self, node: NodeId) -> AttrMap:
        try:
            return self._nodes[node]
        except KeyError:
            raise GraphError(f"node {node} not in graph") from None

    def edge_attrs(self, u: NodeId, v: NodeId) -> AttrMap:
        eid = canonical_edge(u, v, self.directed)
        try:
            return self._edge_attrs[eid]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) not in graph") from None

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def edges(self) -> Iterator[EdgeId]:
        return iter(self._edge_attrs)

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """Neighbor ids of ``node`` (out-neighbors when directed)."""
        try:
            return self._adj[node]
        except KeyError:
            raise GraphError(f"node {node} not in graph") from None

    def degree(self, node: NodeId) -> int:
        return len(self.neighbors(node))

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edge_attrs)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.directed == other.directed
            and self._nodes == other._nodes
            and self._edge_attrs == other._edge_attrs
        )

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"<Graph {kind} n={self.num_nodes} m={self.num_edges}>"

    def copy(self) -> "Graph":
        """Structural copy: independent node/adjacency/edge containers and
        attribute maps.  Attribute *values* are shared — the event replay
        treats them as immutable (replaced, never mutated in place), so a
        copy can never observe changes through them.  Much faster than
        ``copy.deepcopy`` for the materialized-snapshot checkpoint path.
        """
        g = Graph(directed=self.directed)
        g._nodes = {n: dict(a) for n, a in self._nodes.items()}
        g._adj = {n: set(s) for n, s in self._adj.items()}
        g._edge_attrs = {e: dict(a) for e, a in self._edge_attrs.items()}
        return g

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def apply_event(self, ev: Event, strict: bool = False) -> None:
        """Mutate the graph according to one atomic event.

        With ``strict=False`` (the default, matching how a store replays
        possibly-redundant deltas) inapplicable events are tolerated:
        re-adding an existing node keeps its attributes, deleting a missing
        edge is a no-op.  With ``strict=True`` such events raise
        :class:`EventError`.
        """
        kind = ev.kind
        if kind == EventKind.NODE_ADD:
            if ev.node in self._nodes:
                if strict:
                    raise EventError(f"node {ev.node} already exists")
                return
            self.add_node(ev.node, ev.value)
        elif kind == EventKind.NODE_DELETE:
            if ev.node not in self._nodes:
                if strict:
                    raise EventError(f"node {ev.node} does not exist")
                return
            self.remove_node(ev.node)
        elif kind == EventKind.EDGE_ADD:
            assert ev.other is not None
            # auto-create endpoints in lenient mode: real traces (e.g. raw
            # citation dumps) frequently reference nodes before their
            # explicit creation records
            for endpoint in (ev.node, ev.other):
                if endpoint not in self._nodes:
                    if strict:
                        raise EventError(f"endpoint {endpoint} does not exist")
                    self.add_node(endpoint)
            if self.has_edge(ev.node, ev.other):
                if strict:
                    raise EventError(f"edge {ev.edge} already exists")
                return
            self.add_edge(ev.node, ev.other, ev.value)
        elif kind == EventKind.EDGE_DELETE:
            assert ev.other is not None
            if not self.has_edge(ev.node, ev.other):
                if strict:
                    raise EventError(f"edge {ev.edge} does not exist")
                return
            self.remove_edge(ev.node, ev.other)
        elif kind == EventKind.NODE_ATTR_SET:
            if ev.node not in self._nodes:
                if strict:
                    raise EventError(f"node {ev.node} does not exist")
                self.add_node(ev.node)
            assert ev.key is not None
            self._nodes[ev.node][ev.key] = ev.value
        elif kind == EventKind.NODE_ATTR_DEL:
            assert ev.key is not None
            attrs = self._nodes.get(ev.node)
            if attrs is None or ev.key not in attrs:
                if strict:
                    raise EventError(f"attribute {ev.key} missing on {ev.node}")
                return
            del attrs[ev.key]
        elif kind == EventKind.EDGE_ATTR_SET:
            assert ev.other is not None and ev.key is not None
            eid = canonical_edge(ev.node, ev.other, self.directed)
            attrs = self._edge_attrs.get(eid)
            if attrs is None:
                if strict:
                    raise EventError(f"edge {eid} does not exist")
                return
            attrs[ev.key] = ev.value
        elif kind == EventKind.EDGE_ATTR_DEL:
            assert ev.other is not None and ev.key is not None
            eid = canonical_edge(ev.node, ev.other, self.directed)
            attrs = self._edge_attrs.get(eid)
            if attrs is None or ev.key not in attrs:
                if strict:
                    raise EventError(f"edge attribute {ev.key} missing on {eid}")
                return
            del attrs[ev.key]
        else:  # pragma: no cover - exhaustive over EventKind
            raise EventError(f"unknown event kind {kind!r}")

    def apply_events(self, events: Iterable[Event], strict: bool = False) -> None:
        for ev in events:
            self.apply_event(ev, strict=strict)

    def apply_columnar(
        self,
        eventlists: Any,
        until: Optional[TimePoint] = None,
        after: Optional[TimePoint] = None,
    ) -> None:
        """Bulk-apply columnar eventlists in global ``(time, seq)`` order.

        ``eventlists`` is one ``ColumnarEventList`` or a sequence of them;
        replicated copies across lists (edge events are stored with both
        endpoints' partitions) are deduplicated by seq.  Replays straight
        off the packed columns with the same lenient semantics as
        ``apply_event(strict=False)``, without materializing ``Event``
        objects.  ``after`` skips events at or before that time — replay
        covers ``(after, until]``, which is how a snapshot seeded from an
        earlier materialized state advances over just the gap.
        """
        # imported lazily: repro.deltas.__init__ imports this module
        from repro.deltas.columnar import (
            _NO_OTHER,
            ColumnarEventList,
            merged_order,
        )

        if isinstance(eventlists, ColumnarEventList):
            eventlists = (eventlists,)
        cels = [el for el in eventlists if len(el)]
        if not cels:
            return
        windows, order = merged_order(cels, until=until, after=after)
        nodes, adj, edge_attrs = self._nodes, self._adj, self._edge_attrs
        directed = self.directed

        def row(kind: int, node: Any, other: Any, entry: Optional[tuple]) -> None:
            key, value, _old = entry if entry is not None else (None, None, None)
            if kind == _K_EDGE_ADD:
                # auto-create endpoints (lenient mode, see apply_event)
                if node not in nodes:
                    nodes[node] = {}
                    adj.setdefault(node, set())
                if other not in nodes:
                    nodes[other] = {}
                    adj.setdefault(other, set())
                eid = canonical_edge(node, other, directed)
                if eid not in edge_attrs:
                    edge_attrs[eid] = dict(value) if value else {}
                    adj[node].add(other)
                    if not directed:
                        adj[other].add(node)
            elif kind == _K_EDGE_DELETE:
                eid = canonical_edge(node, other, directed)
                if eid in edge_attrs:
                    del edge_attrs[eid]
                    adj[node].discard(other)
                    if not directed:
                        adj[other].discard(node)
            elif kind == _K_NODE_ADD:
                if node not in nodes:
                    nodes[node] = dict(value) if value else {}
                    adj.setdefault(node, set())
            elif kind == _K_NODE_DELETE:
                if node in nodes:
                    self.remove_node(node)
            elif kind == _K_NODE_ATTR_SET:
                attrs = nodes.get(node)
                if attrs is None:
                    attrs = {}
                    nodes[node] = attrs
                    adj.setdefault(node, set())
                attrs[key] = value
            elif kind == _K_NODE_ATTR_DEL:
                attrs = nodes.get(node)
                if attrs is not None and key in attrs:
                    del attrs[key]
            elif kind == _K_EDGE_ATTR_SET:
                attrs = edge_attrs.get(canonical_edge(node, other, directed))
                if attrs is not None:
                    attrs[key] = value
            elif kind == _K_EDGE_ATTR_DEL:
                attrs = edge_attrs.get(canonical_edge(node, other, directed))
                if attrs is not None and key in attrs:
                    del attrs[key]

        if order is None:
            for li, cel in enumerate(cels):
                lo, hi = windows[li]
                if hi <= lo:
                    continue
                kinds, ncol, ocol = cel._kinds, cel._nodes, cel._others
                get_side = cel._side_entries().get
                for i in range(lo, hi):
                    o = ocol[i]
                    row(kinds[i], ncol[i], None if o == _NO_OTHER else o,
                        get_side(i))
        else:
            cols = [
                (c._kinds, c._nodes, c._others, c._side_entries())
                for c in cels
            ]
            for li, i in order:
                kinds, ncol, ocol, side = cols[li]
                o = ocol[i]
                row(kinds[i], ncol[i], None if o == _NO_OTHER else o,
                    side.get(i))

    @classmethod
    def replay(
        cls,
        events: Iterable[Event],
        until: Optional[TimePoint] = None,
        directed: bool = False,
    ) -> "Graph":
        """Materialize the snapshot as of ``until`` by replaying ``events``.

        Events with ``time > until`` are ignored.  This is the ground-truth
        (*Log*) reconstruction every index implementation is tested against.
        """
        g = cls(directed=directed)
        for ev in events:
            if until is not None and ev.time > until:
                break
            g.apply_event(ev)
        return g

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Induced subgraph on ``nodes`` (missing ids are ignored)."""
        keep = {n for n in nodes if n in self._nodes}
        sub = Graph(directed=self.directed)
        for n in keep:
            sub.add_node(n, self._nodes[n])
        for (u, v), attrs in self._edge_attrs.items():
            if u in keep and v in keep:
                sub.add_edge(u, v, attrs)
        return sub

    def khop_nodes(self, root: NodeId, k: int) -> Set[NodeId]:
        """Ids of all nodes within ``k`` hops of ``root`` (including it)."""
        if root not in self._nodes:
            raise GraphError(f"node {root} not in graph")
        seen = {root}
        frontier = {root}
        for _ in range(k):
            nxt: Set[NodeId] = set()
            for n in frontier:
                nxt |= self._adj[n]
            nxt -= seen
            if not nxt:
                break
            seen |= nxt
            frontier = nxt
        return seen

    def khop_subgraph(self, root: NodeId, k: int) -> "Graph":
        """Induced subgraph on the k-hop neighborhood of ``root``."""
        return self.subgraph(self.khop_nodes(root, k))

    def to_networkx(self):  # pragma: no cover - thin convenience shim
        """Export to a ``networkx`` graph for interoperability."""
        import networkx as nx

        g = nx.DiGraph() if self.directed else nx.Graph()
        for n, attrs in self._nodes.items():
            g.add_node(n, **attrs)
        for (u, v), attrs in self._edge_attrs.items():
            g.add_edge(u, v, **attrs)
        return g
