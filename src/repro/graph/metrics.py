"""Static graph metrics used by the paper's analytics examples.

The TAF examples in the paper compute local clustering coefficients,
graph density, degree statistics, community counts and similar quantities
over snapshots.  These are implemented directly on :class:`repro.graph.Graph`
so TAF has no external dependency; `networkx` remains available for users
via ``Graph.to_networkx``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.static import Graph
from repro.types import NodeId


def density(g: Graph) -> float:
    """Edge density: ``m / (n*(n-1)/2)`` for undirected, ``m / (n*(n-1))``
    for directed.  Zero for graphs with fewer than two nodes."""
    n = g.num_nodes
    if n < 2:
        return 0.0
    possible = n * (n - 1)
    if not g.directed:
        possible //= 2
    return g.num_edges / possible


def local_clustering_coefficient(g: Graph, node: NodeId) -> float:
    """Fraction of pairs of neighbors of ``node`` that are themselves
    connected.  Zero for degree < 2.  (Undirected semantics.)"""
    nbrs = list(g.neighbors(node))
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    for i in range(k):
        for j in range(i + 1, k):
            if g.has_edge(nbrs[i], nbrs[j]):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(g: Graph) -> float:
    """Mean local clustering coefficient over all nodes (0 for empty)."""
    n = g.num_nodes
    if n == 0:
        return 0.0
    return sum(local_clustering_coefficient(g, v) for v in g.nodes()) / n


def degree_histogram(g: Graph) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    hist: Dict[int, int] = {}
    for v in g.nodes():
        d = g.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def average_degree(g: Graph) -> float:
    if g.num_nodes == 0:
        return 0.0
    return sum(g.degree(v) for v in g.nodes()) / g.num_nodes


def connected_components(g: Graph) -> List[List[NodeId]]:
    """Connected components (weak components for directed graphs),
    each sorted by node id, largest first."""
    seen: set = set()
    # undirected view of adjacency for weak connectivity
    comps: List[List[NodeId]] = []
    for start in g.nodes():
        if start in seen:
            continue
        comp = []
        dq = deque([start])
        seen.add(start)
        while dq:
            v = dq.popleft()
            comp.append(v)
            for w in g.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    dq.append(w)
            if g.directed:
                # include in-neighbors for weak connectivity
                for (a, b) in g.edges():
                    if b == v and a not in seen:
                        seen.add(a)
                        dq.append(a)
        comps.append(sorted(comp))
    comps.sort(key=len, reverse=True)
    return comps


def shortest_path_lengths(g: Graph, source: NodeId) -> Dict[NodeId, int]:
    """Unweighted BFS distances from ``source`` to every reachable node."""
    if not g.has_node(source):
        raise GraphError(f"node {source} not in graph")
    dist = {source: 0}
    dq = deque([source])
    while dq:
        v = dq.popleft()
        for w in g.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                dq.append(w)
    return dist


def diameter_estimate(g: Graph, samples: int = 16, seed: int = 0) -> int:
    """Lower-bound estimate of the diameter via BFS from sampled sources.

    Exact diameter is O(n*m); the paper's examples only need an indicative
    figure, so we run BFS from ``samples`` deterministic sources.
    """
    import random

    nodes = sorted(g.nodes())
    if not nodes:
        return 0
    rng = random.Random(seed)
    sources = nodes if len(nodes) <= samples else rng.sample(nodes, samples)
    best = 0
    for s in sources:
        dist = shortest_path_lengths(g, s)
        if dist:
            best = max(best, max(dist.values()))
    return best


def pagerank(
    g: Graph,
    damping: float = 0.85,
    max_iter: int = 50,
    tol: float = 1e-9,
) -> Dict[NodeId, float]:
    """Power-iteration PageRank.

    For undirected graphs every edge is treated as bidirectional.  Dangling
    mass is redistributed uniformly.  Converges when the L1 change drops
    below ``tol``.
    """
    nodes = list(g.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    rank = {v: 1.0 / n for v in nodes}
    out_deg = {v: g.degree(v) for v in nodes}
    for _ in range(max_iter):
        nxt = {v: (1.0 - damping) / n for v in nodes}
        dangling = sum(rank[v] for v in nodes if out_deg[v] == 0)
        share = damping * dangling / n
        for v in nodes:
            nxt[v] += share
            if out_deg[v] == 0:
                continue
            contribution = damping * rank[v] / out_deg[v]
            for w in g.neighbors(v):
                nxt[w] += contribution
        delta = sum(abs(nxt[v] - rank[v]) for v in nodes)
        rank = nxt
        if delta < tol:
            break
    return rank


def degree_centrality(g: Graph) -> Dict[NodeId, float]:
    """Degree divided by (n-1); the standard normalized degree centrality."""
    n = g.num_nodes
    if n <= 1:
        return {v: 0.0 for v in g.nodes()}
    return {v: g.degree(v) / (n - 1) for v in g.nodes()}


def triangle_count(g: Graph) -> int:
    """Total number of triangles (undirected semantics)."""
    count = 0
    for v in g.nodes():
        nbrs = sorted(n for n in g.neighbors(v) if n > v)
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                if g.has_edge(nbrs[i], nbrs[j]):
                    count += 1
    return count


class GraphMetrics:
    """Namespace object mirroring the paper's ``GraphMetrics()`` API
    (Fig. 7c: ``gm = GraphMetrics(); ...Evolution(gm.density, 10)``)."""

    density = staticmethod(density)
    average_clustering = staticmethod(average_clustering)
    average_degree = staticmethod(average_degree)
    diameter = staticmethod(diameter_estimate)
    triangles = staticmethod(triangle_count)

    @staticmethod
    def max_core(g: Graph) -> int:
        """Largest core number in the graph (0 for empty graphs)."""
        core = k_core_decomposition(g)
        return max(core.values(), default=0)


class NodeMetrics:
    """Namespace object mirroring the paper's ``NodeMetrics()`` API
    (Fig. 7a: ``nm.LCC``).  Functions take ``(graph, node_id)``."""

    LCC = staticmethod(local_clustering_coefficient)

    @staticmethod
    def degree(g: Graph, node: NodeId) -> int:
        return g.degree(node)

    @staticmethod
    def neighbor_count_with(g: Graph, node: NodeId, key: str, value) -> int:
        """Number of neighbors whose attribute ``key`` equals ``value``."""
        return sum(
            1 for nbr in g.neighbors(node) if g.node_attrs(nbr).get(key) == value
        )


def betweenness_centrality(
    g: Graph, normalized: bool = True
) -> Dict[NodeId, float]:
    """Exact betweenness centrality (Brandes' algorithm, unweighted).

    O(n·m); intended for the snapshot sizes TAF hands to user code.  For
    undirected graphs pair contributions are halved as usual.
    """
    nodes = list(g.nodes())
    centrality = {v: 0.0 for v in nodes}
    for s in nodes:
        # single-source shortest paths with path counting
        stack: List[NodeId] = []
        preds: Dict[NodeId, List[NodeId]] = {v: [] for v in nodes}
        sigma = {v: 0.0 for v in nodes}
        sigma[s] = 1.0
        dist = {s: 0}
        dq = deque([s])
        while dq:
            v = dq.popleft()
            stack.append(v)
            for w in g.neighbors(v):
                if w not in dist:
                    dist[w] = dist[v] + 1
                    dq.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        delta = {v: 0.0 for v in nodes}
        while stack:
            w = stack.pop()
            for v in preds[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != s:
                centrality[w] += delta[w]
    n = len(nodes)
    if not g.directed:
        for v in centrality:
            centrality[v] /= 2.0
    if normalized and n > 2:
        scale = 1.0 / ((n - 1) * (n - 2))
        if not g.directed:
            scale *= 2.0
        for v in centrality:
            centrality[v] *= scale
    return centrality


def closeness_centrality(g: Graph) -> Dict[NodeId, float]:
    """Harmonic-free classic closeness, scaled by reachable-component size
    (the Wasserman-Faust correction), 0 for isolated nodes."""
    n = g.num_nodes
    out: Dict[NodeId, float] = {}
    for v in g.nodes():
        dist = shortest_path_lengths(g, v)
        total = sum(dist.values())
        reachable = len(dist)
        if total > 0 and n > 1:
            out[v] = ((reachable - 1) / total) * ((reachable - 1) / (n - 1))
        else:
            out[v] = 0.0
    return out


def k_core_decomposition(g: Graph) -> Dict[NodeId, int]:
    """Core number of every node (Batagelj-Zaversnik peeling)."""
    degrees = {v: g.degree(v) for v in g.nodes()}
    order = sorted(degrees, key=degrees.get)
    core = dict(degrees)
    seen: set = set()
    import heapq

    heap = [(d, v) for v, d in degrees.items()]
    heapq.heapify(heap)
    current = 0
    while heap:
        d, v = heapq.heappop(heap)
        if v in seen or d != core[v]:
            continue
        seen.add(v)
        current = max(current, core[v])
        core[v] = current
        for w in g.neighbors(v):
            if w not in seen and core[w] > core[v]:
                core[w] -= 1
                heapq.heappush(heap, (core[w], w))
    return core


def conductance(g: Graph, node_set) -> float:
    """Conductance of a cut: cut edges over the smaller side's volume.

    Returns 0.0 for empty or full sets (no cut).
    """
    inside = {n for n in node_set if g.has_node(n)}
    if not inside or len(inside) == g.num_nodes:
        return 0.0
    cut = 0
    vol_in = 0
    vol_out = 0
    for v in g.nodes():
        deg = g.degree(v)
        if v in inside:
            vol_in += deg
        else:
            vol_out += deg
    for (u, v) in g.edges():
        if (u in inside) != (v in inside):
            cut += 1
    denom = min(vol_in, vol_out)
    return cut / denom if denom else 0.0


def degree_assortativity(g: Graph) -> float:
    """Pearson correlation of degrees at edge endpoints (undirected);
    0.0 when undefined (no edges or zero variance)."""
    xs: List[float] = []
    ys: List[float] = []
    for (u, v) in g.edges():
        du, dv = g.degree(u), g.degree(v)
        xs.extend((du, dv))
        ys.extend((dv, du))
    n = len(xs)
    if n == 0:
        return 0.0
    mean_x = sum(xs) / n
    var = sum((x - mean_x) ** 2 for x in xs)
    if var == 0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_x) for x, y in zip(xs, ys))
    return cov / var
