"""Property-graph data model: static graphs, change events, metrics."""

from repro.graph.events import Event, EventBuilder, EventKind
from repro.graph.static import Graph
from repro.graph.metrics import GraphMetrics, NodeMetrics

__all__ = ["Event", "EventBuilder", "EventKind", "Graph", "GraphMetrics", "NodeMetrics"]
