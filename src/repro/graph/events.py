"""Atomic change events over a time-evolving graph.

An *event* is the smallest change that happens to a graph (paper,
Example 1): addition or deletion of a node or an edge, or a change in an
attribute value.  Events are totally ordered by ``(time, seq)`` where
``seq`` is a tie-breaking sequence number assigned at generation time, so a
stream of events is an unambiguous description of the graph's history.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EventError
from repro.types import EdgeId, NodeId, TimePoint, canonical_edge


class EventKind(enum.IntEnum):
    """Discriminates the eight atomic change types."""

    NODE_ADD = 0
    NODE_DELETE = 1
    EDGE_ADD = 2
    EDGE_DELETE = 3
    NODE_ATTR_SET = 4
    NODE_ATTR_DEL = 5
    EDGE_ATTR_SET = 6
    EDGE_ATTR_DEL = 7


#: Kinds that reference an edge (and therefore two endpoints).
EDGE_KINDS = frozenset(
    {
        EventKind.EDGE_ADD,
        EventKind.EDGE_DELETE,
        EventKind.EDGE_ATTR_SET,
        EventKind.EDGE_ATTR_DEL,
    }
)


@dataclass(frozen=True, slots=True)
class Event:
    """One atomic change at one time point.

    Attributes:
        time: discrete time point at which the change takes effect.
        seq: tie-breaker for events sharing a time point; assigned by the
            producer, unique within a history.
        kind: which of the eight atomic changes this is.
        node: subject node id (for edge events, the first endpoint).
        other: second endpoint for edge events, else ``None``.
        key: attribute key for attribute events, else ``None``.
        value: new attribute value for ``*_ATTR_SET``; initial attribute map
            for ``NODE_ADD`` / ``EDGE_ADD`` (may be ``None`` for empty).
        old_value: previous attribute value, recorded so that events are
            invertible; ``None`` when there was no previous value.
    """

    time: TimePoint
    seq: int
    kind: EventKind
    node: NodeId
    other: Optional[NodeId] = None
    key: Optional[str] = None
    value: Any = None
    old_value: Any = None

    def __post_init__(self) -> None:
        if self.kind in EDGE_KINDS and self.other is None:
            raise EventError(f"edge event {self.kind.name} requires two endpoints")
        if self.kind in _ATTR_KINDS and self.key is None:
            raise EventError(f"attribute event {self.kind.name} requires a key")

    @property
    def edge(self) -> Optional[EdgeId]:
        """Canonical edge id for edge events, ``None`` for node events."""
        if self.other is None:
            return None
        return canonical_edge(self.node, self.other)

    @property
    def entities(self) -> Tuple[NodeId, ...]:
        """Node ids this event touches (both endpoints for edge events)."""
        if self.other is None:
            return (self.node,)
        return (self.node, self.other)

    def sort_key(self) -> Tuple[TimePoint, int]:
        return (self.time, self.seq)

    def touches(self, node_id: NodeId) -> bool:
        """True when the event concerns ``node_id`` directly."""
        return self.node == node_id or self.other == node_id


_ATTR_KINDS = frozenset(
    {
        EventKind.NODE_ATTR_SET,
        EventKind.NODE_ATTR_DEL,
        EventKind.EDGE_ATTR_SET,
        EventKind.EDGE_ATTR_DEL,
    }
)


class EventBuilder:
    """Convenience factory that assigns monotonically increasing ``seq``.

    Workload generators and tests use this to produce well-formed, totally
    ordered event streams without tracking sequence numbers by hand.
    """

    def __init__(self, start_seq: int = 0) -> None:
        self._seq = start_seq

    def _next(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def node_add(self, t: TimePoint, node: NodeId, attrs: Any = None) -> Event:
        return Event(t, self._next(), EventKind.NODE_ADD, node, value=attrs)

    def node_delete(self, t: TimePoint, node: NodeId) -> Event:
        return Event(t, self._next(), EventKind.NODE_DELETE, node)

    def edge_add(
        self, t: TimePoint, u: NodeId, v: NodeId, attrs: Any = None
    ) -> Event:
        return Event(t, self._next(), EventKind.EDGE_ADD, u, other=v, value=attrs)

    def edge_delete(self, t: TimePoint, u: NodeId, v: NodeId) -> Event:
        return Event(t, self._next(), EventKind.EDGE_DELETE, u, other=v)

    def node_attr_set(
        self, t: TimePoint, node: NodeId, key: str, value: Any, old: Any = None
    ) -> Event:
        return Event(
            t, self._next(), EventKind.NODE_ATTR_SET, node, key=key, value=value,
            old_value=old,
        )

    def node_attr_del(
        self, t: TimePoint, node: NodeId, key: str, old: Any = None
    ) -> Event:
        return Event(
            t, self._next(), EventKind.NODE_ATTR_DEL, node, key=key, old_value=old
        )

    def edge_attr_set(
        self,
        t: TimePoint,
        u: NodeId,
        v: NodeId,
        key: str,
        value: Any,
        old: Any = None,
    ) -> Event:
        return Event(
            t, self._next(), EventKind.EDGE_ATTR_SET, u, other=v, key=key,
            value=value, old_value=old,
        )

    def edge_attr_del(
        self, t: TimePoint, u: NodeId, v: NodeId, key: str, old: Any = None
    ) -> Event:
        return Event(
            t, self._next(), EventKind.EDGE_ATTR_DEL, u, other=v, key=key,
            old_value=old,
        )


def check_sorted(events: Sequence[Event]) -> None:
    """Raise :class:`EventError` unless ``events`` is sorted by (time, seq)."""
    for prev, cur in zip(events, events[1:]):
        if cur.sort_key() < prev.sort_key():
            raise EventError(
                f"event stream out of order at seq {cur.seq} (t={cur.time})"
            )


def events_in_range(
    events: Iterable[Event], ts: TimePoint, te: TimePoint
) -> Iterator[Event]:
    """Yield events with ``ts < time <= te`` (the paper's ``(ts, te]`` scope)."""
    for ev in events:
        if ts < ev.time <= te:
            yield ev
