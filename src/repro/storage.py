"""Persistence for historical graph indexes.

The paper's store is durable by virtue of Cassandra; the in-process
reproduction offers explicit save/load instead, so a built index (the
expensive part) can be reused across sessions and shipped with benchmark
results.

Format: a single pickle stream with a versioned envelope.  Pickle is
appropriate here for the same reason it was in the paper's prototype
("using Pickle ... for serialization"): the library writes and reads its
own files.  Do not load index files from untrusted sources.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Union

from repro.errors import HGSError
from repro.index.interface import HistoricalGraphIndex

_MAGIC = "hgs-index"
# 2: indexes carry the fetch-plan executor / delta-cache attributes
# (repro.exec); version-1 files lack them and would fail at query time
# 3: TGIConfig carries the `pipeline` toggle; version-2 files would fail
# on config access during pipelined execution
# 4: TGIConfig carries `delta_cache_bytes` / `checkpoint_entries` and the
# TGI a `checkpoints` attribute; version-3 files would fail on config
# access during checkpoint-aware planning (and silently predate the
# pipeline-default flip)
# 5: the TGI carries a `stats` GraphStatistics artifact (per-timespan
# partition/degree/cut summaries, event-rate histograms, apply-cost
# calibration) that planning, pricing and nearest-in-time checkpoint
# seeding read; version-4 files lack it and would plan with the
# degenerate whole-span bound while claiming stats-backed estimates
# 6: rows may carry the columnar eventlist codec (tags C/c) and
# TGIConfig the `apply_workers` lane count; version-5 files pickle-load
# but would decode columnar payloads written by a re-save incorrectly
# and fail on config access during parallel replay
# 7: TGIConfig carries the `coalesce` flag (cross-query fetch
# coalescing: single-flight key dedup + merged multiget rounds for
# batched execution); version-6 files would fail on config access when
# the session wires the executor's coalescing default
# 8: ClusterConfig carries the `checksums` flag and rows may be wrapped
# in the CRC32 envelope (tag K) it enables; version-7 files would fail
# on config access when the fault harness or CLI inspects the flag
_FORMAT_VERSION = 8


class PersistenceError(HGSError):
    """Raised on malformed or incompatible index files."""


def save_index(index: HistoricalGraphIndex, path: Union[str, Path]) -> None:
    """Serialize a built index (any of the six families) to ``path``."""
    envelope = {
        "magic": _MAGIC,
        "format": _FORMAT_VERSION,
        "class": type(index).__name__,
        "index": index,
    }
    path = Path(path)
    with path.open("wb") as f:
        pickle.dump(envelope, f, protocol=pickle.HIGHEST_PROTOCOL)


def load_index(path: Union[str, Path]) -> HistoricalGraphIndex:
    """Load an index previously written by :func:`save_index`."""
    path = Path(path)
    try:
        with path.open("rb") as f:
            envelope = pickle.load(f)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise PersistenceError(f"cannot read index file {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("magic") != _MAGIC:
        raise PersistenceError(f"{path} is not an HGS index file")
    if envelope.get("format") != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported index format {envelope.get('format')!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    index = envelope.get("index")
    if not isinstance(index, HistoricalGraphIndex):
        raise PersistenceError(f"{path} does not contain an index")
    return index
