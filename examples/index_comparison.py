"""Compare all six temporal index families on the same history — a live
rendition of the paper's Table 1 trade-off space.

Run with::

    python examples/index_comparison.py
"""

from repro import (
    CopyIndex,
    CopyLogIndex,
    DeltaGraphIndex,
    LogIndex,
    NodeCentricIndex,
    TGI,
    TGIConfig,
)
from repro.graph.static import Graph
from repro.workloads.citation import CitationConfig, generate_citation_events


def main() -> None:
    events = generate_citation_events(CitationConfig(num_nodes=600, seed=5))
    t_end = events[-1].time
    mid = t_end // 2

    indexes = {
        "Log": LogIndex(eventlist_size=200),
        "Copy": CopyIndex(),
        "Copy+Log": CopyLogIndex(eventlist_size=200, lists_per_checkpoint=4),
        "NodeCentric": NodeCentricIndex(),
        "DeltaGraph": DeltaGraphIndex(eventlist_size=200, arity=2),
        "TGI": TGI(
            TGIConfig(
                events_per_timespan=1500,
                eventlist_size=150,
                micro_partition_size=50,
            )
        ),
    }
    print(f"building 6 indexes over {len(events)} events ...")
    for name, idx in indexes.items():
        idx.build(events)

    truth = Graph.replay(events, until=mid)
    probe_node = max(truth.nodes(), key=truth.degree)

    header = (
        f"{'index':<12} {'storage KiB':>12} {'snapshot':>18} "
        f"{'node versions':>18} {'1-hop':>18}"
    )
    print("\n" + header)
    print("-" * len(header))
    for name, idx in indexes.items():
        storage = idx.cluster.stored_bytes // 1024

        idx.get_snapshot(mid)
        snap = idx.last_fetch_stats
        snap_cell = f"{snap.num_requests}r/{snap.sim_time_ms:7.1f}ms"

        idx.get_node_history(probe_node, mid // 2, t_end)
        hist = idx.last_fetch_stats
        hist_cell = f"{hist.num_requests}r/{hist.sim_time_ms:7.1f}ms"

        idx.get_khop(probe_node, mid, k=1)
        hop = idx.last_fetch_stats
        hop_cell = f"{hop.num_requests}r/{hop.sim_time_ms:7.1f}ms"

        print(
            f"{name:<12} {storage:>12} {snap_cell:>18} {hist_cell:>18} "
            f"{hop_cell:>18}"
        )

    print(
        "\nReading the table: Log is tiny but pays full-history replay on "
        "every query;\nCopy answers snapshots in one read but stores the "
        "graph quadratically;\nthe node-centric index nails version queries "
        "and loses on snapshots;\nTGI (and DeltaGraph for snapshots) stay "
        "within a small factor of the\nspecialist for every primitive — the "
        "paper's generalization claim."
    )


if __name__ == "__main__":
    main()
