"""Temporal pattern mining with incremental counters (the paper's Sec. 5.2
motivation: maintaining pattern counts over long version sequences with
auxiliary inverted indexes instead of re-matching per snapshot).

Run with::

    python examples/pattern_mining.py
"""

import time

from repro import GraphSession, TGI, TGIConfig
from repro.graph.metrics import triangle_count
from repro.taf.patterns import (
    LabeledEdgeCounter,
    TriangleCounter,
    WedgeCounter,
    brute_force_count,
    count_over_time,
)
from repro.workloads.social import SocialConfig, generate_social_events


def main() -> None:
    events = generate_social_events(
        SocialConfig(num_nodes=100, num_steps=2200, seed=21)
    )
    t_end = events[-1].time
    tgi = TGI(TGIConfig(events_per_timespan=1200, eventlist_size=150,
                        micro_partition_size=25))
    tgi.build(events)
    session = GraphSession.from_index(tgi)

    sots = session.subgraphs(k=2).Timeslice(1, t_end).fetch(
        centers=[0, 5, 10]
    )

    print("triangle counts over time (2-hop neighborhoods):")
    for sg in sots:
        series = count_over_time(sg, TriangleCounter)
        first, last = series[0], series[-1]
        peak = max(series, key=lambda p: p[1])
        print(
            f"  center {sg.center:>3}: {first[1]:.0f} -> {last[1]:.0f} "
            f"triangles (peak {peak[1]:.0f} at t={peak[0]})"
        )

    print("\ncross-community friendships (A-B edges) over time:")
    for sg in sots:
        series = count_over_time(
            sg, lambda: LabeledEdgeCounter("community", "A", "B")
        )
        print(f"  center {sg.center:>3}: final count {series[-1][1]:.0f} "
              f"over {len(series)} change points")

    # incremental vs brute force: same numbers, very different cost
    sg = sots.collect()[0]
    start = time.perf_counter()
    fast = count_over_time(sg, WedgeCounter)
    t_fast = time.perf_counter() - start

    def wedges(g):
        return sum(g.degree(v) * (g.degree(v) - 1) // 2 for v in g.nodes())

    start = time.perf_counter()
    slow = brute_force_count(sg, wedges)
    t_slow = time.perf_counter() - start
    assert fast == slow
    print(
        f"\nwedge counting, center {sg.center}: incremental {t_fast*1000:.1f} ms "
        f"vs per-snapshot {t_slow*1000:.1f} ms "
        f"({t_slow/max(t_fast, 1e-9):.0f}x) — identical series"
    )


if __name__ == "__main__":
    main()
