"""The query service end to end: micro-batched HTTP serving over one
shared `GraphSession`, with admission control and live metrics.

Builds a small citation-network TGI, serves it in-process, then plays
three roles against it:

1. a burst of concurrent callers with overlapping k-hop queries — the
   batching window coalesces their store fetches (watch the fair
   per-caller accounting still sum to the deduplicated totals);
2. a greedy caller hitting a per-caller rate limit (429 + Retry-After);
3. an operations view: /healthz, /metrics, and a graceful drain.

Run with::

    python examples/serve_demo.py
"""

import threading

from repro import GraphSession, TGI, TGIConfig
from repro.api import Draining, RateLimited
from repro.kvstore.cluster import ClusterConfig
from repro.service import BackgroundService, ServiceClient
from repro.workloads.citation import CitationConfig, generate_citation_events


def main() -> None:
    events = generate_citation_events(
        CitationConfig(num_nodes=600, citations_per_node=4, seed=7)
    )
    t_end = events[-1].time
    tgi = TGI(TGIConfig(
        events_per_timespan=2500,
        eventlist_size=200,
        micro_partition_size=64,
        pipeline=True,
        coalesce=True,
        cluster=ClusterConfig(num_machines=4),
    ))
    tgi.build(events)
    session = GraphSession.from_index(tgi)

    service = BackgroundService(
        session,
        window_ms=20.0,
        max_batch=16,
        rate=5.0,   # per-caller requests/second
        burst=2.0,
    ).start()
    print(f"service listening on 127.0.0.1:{service.port}\n")

    # --- one lone query -----------------------------------------------------
    client = ServiceClient(port=service.port, caller="demo")
    out = client.query({"kind": "khop", "node": 3, "time": t_end, "k": 2})
    print(f"khop(3, k=2) -> {out['neighborhood']['nodes']} nodes, "
          f"{out['deltas_fetched']} store requests, "
          f"algorithm={out['algorithm']}")
    print(f"  served in batch {out['service']['batch_id']} "
          f"(size {out['service']['batch_size']})\n")

    # --- a concurrent burst of overlapping neighborhoods --------------------
    centers = [3, 5, 8, 3, 5, 8, 3, 5]  # heavy overlap on purpose
    payloads = [None] * len(centers)

    def call(i: int) -> None:
        c = ServiceClient(port=service.port, caller=f"caller-{i % 4}")
        payloads[i] = c.query(
            {"kind": "khop", "node": centers[i], "time": t_end, "k": 2}
        )

    threads = [
        threading.Thread(target=call, args=(i,))
        for i in range(len(centers))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    sizes = {p["service"]["batch_size"] for p in payloads}
    shared = sum(p.get("coalesce", {}).get("hits", 0) for p in payloads)
    fair_total = sum(p["deltas_fetched"] for p in payloads)
    print(f"{len(centers)} concurrent callers -> batch sizes {sorted(sizes)}, "
          f"{shared} coalesced key hits")
    print(f"fair per-request shares sum to {fair_total:.2f} store requests "
          f"(vs {len(centers)}x a lone query without batching)\n")

    # --- rate limiting ------------------------------------------------------
    greedy = ServiceClient(port=service.port, caller="greedy")
    sent = 0
    try:
        for _ in range(10):
            greedy.query({"kind": "snapshot", "time": t_end // 2})
            sent += 1
    except RateLimited as exc:
        print(f"greedy caller rate-limited after {sent} queries "
              f"(retry after {exc.retry_after:.2f}s)\n")

    # --- operations view ----------------------------------------------------
    metrics = client.metrics()
    print(f"health: {client.healthz()['status']}")
    print(f"served {metrics['requests']['total']} requests in "
          f"{metrics['batches']['count']} batches "
          f"(mean size {metrics['batches']['mean_size']})")
    print(f"per-caller store requests: "
          f"{metrics['store']['requests_by_caller']}")
    print(f"service p50 latency: "
          f"{metrics['latency']['service_ms']['p50_ms']}ms")

    # --- graceful drain -----------------------------------------------------
    service.service.begin_drain()
    try:
        client.query({"kind": "snapshot", "time": t_end // 2})
    except Draining as exc:
        print(f"\nafter drain begins: {exc.http_status} {exc.code} "
              f"(retryable={exc.retryable})")
    service.stop()
    print("service drained and stopped cleanly")


if __name__ == "__main__":
    main()
