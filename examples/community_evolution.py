"""Community evolution analysis with the TAF (the paper's Fig. 7b / 9b
scenario: "compare two communities in a network over a year").

Run with::

    python examples/community_evolution.py
"""

from repro import GraphSession, TGI, TGIConfig
from repro.graph.metrics import GraphMetrics
from repro.taf.aggregation import TempAggregation
from repro.taf.son import SON
from repro.taf import timepoints
from repro.workloads.social import SocialConfig, generate_social_events


def main() -> None:
    # a dynamic social network: people join, befriend (mostly within
    # communities), drift between communities, and change activity levels
    events = generate_social_events(
        SocialConfig(num_nodes=120, num_steps=2500, seed=13)
    )
    t_end = events[-1].time

    tgi = TGI(
        TGIConfig(
            events_per_timespan=1200,
            eventlist_size=120,
            micro_partition_size=32,
        )
    )
    tgi.build(events)
    session = GraphSession.from_index(tgi, workers=3)

    # fetch the full year of temporal nodes, keeping only the community label
    son = session.nodes().timeslice(1, t_end).Filter("community").fetch()
    print(
        f"fetched {len(son)} temporal nodes "
        f"({son.fetch_stats.requests} store requests, "
        f"simulated {son.fetch_stats.sim_time_ms:.0f} ms)"
    )

    # --- compare community sizes over time (paper Fig. 7b) ---------------
    son_a = son.Select('community = "A"')
    son_b = son.Select('community = "B"')
    series_a, series_b = SON.Compare(
        son_a, son_b, SON.count(),
        timepoints=lambda a, b: timepoints.union_change_points(a, b)[::25],
    )
    mean_a = sum(series_a) / len(series_a)
    mean_b = sum(series_b) / len(series_b)
    print("\nAverage membership over the history:")
    print(f"  A={mean_a:.1f}\tB={mean_b:.1f}")

    # --- evolution of graph density (paper Fig. 7c) ------------------------
    evol = son.GetGraph().Evolution(GraphMetrics.density, 10)
    print("\nGraph density over 10 points:")
    for t, d in evol:
        print(f"  t={t:5d}  density={d:.4f}")

    # --- temporal aggregation: when did density peak? ----------------------
    peaks = TempAggregation.Peak(evol)
    if peaks:
        t_peak, v_peak = max(peaks, key=lambda p: p[1])
        print(f"\npeak density {v_peak:.4f} at t={t_peak}")

    # --- who ends up with the most friends in community A? -----------------
    degrees = son_a.NodeCompute(
        lambda state: len(state.E) if state else 0, at=t_end
    )
    node, best = degrees.Max()
    print(f"most connected member of A at t={t_end}: node {node} "
          f"({best} friends)")


if __name__ == "__main__":
    main()
