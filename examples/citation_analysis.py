"""Citation-network analytics: version queries and incremental computation
(the paper's "How many citations did I have in 2012?" and Fig. 8 label
counting), driven through the `GraphSession` facade.

Run with::

    python examples/citation_analysis.py
"""

from repro import GraphSession, TGI, TGIConfig
from repro.graph.events import EventKind
from repro.graph.metrics import NodeMetrics
from repro.spark.rdd import SparkContext
from repro.workloads.citation import CitationConfig, generate_citation_events


def main() -> None:
    events = generate_citation_events(
        CitationConfig(num_nodes=1200, citations_per_node=5, seed=3)
    )
    t_end = events[-1].time
    tgi = TGI(
        TGIConfig(
            events_per_timespan=2500,
            eventlist_size=200,
            micro_partition_size=64,
        )
    )
    tgi.build(events)
    session = GraphSession.from_index(
        tgi, spark_context=SparkContext(num_workers=2)
    )

    # --- "How many citations did I have at time T?" -------------------------
    paper_id = 17
    for t in (t_end // 4, t_end // 2, t_end):
        state = session.at(t).node_state(paper_id).value
        count = len(state.E) if state else 0
        print(f"citations of paper {paper_id} at t={t}: {count}")

    # --- degree evolution for the earliest papers, computed incrementally ---
    son = session.nodes("id < 10").timeslice(1, t_end).fetch()

    def degree(state):
        return len(state.E) if state else 0

    def degree_delta(prev_state, prev_val, ev):
        if ev.kind == EventKind.EDGE_ADD:
            return prev_val + 1
        if ev.kind == EventKind.EDGE_DELETE:
            return prev_val - 1
        return prev_val

    series = son.NodeComputeDelta(degree, degree_delta)
    print("\ndegree evolution (first and final values):")
    for nid in sorted(series.series)[:10]:
        s = series[nid]
        print(f"  paper {nid}: {s[0][1]} -> {s[-1][1]} over {len(s)} changes")

    # --- local clustering in 1-hop neighborhoods at the end of history ------
    sots = session.subgraphs(k=1).Timeslice(t_end).fetch(
        centers=list(range(10))
    )
    lcc = sots.NodeCompute(NodeMetrics.LCC)
    node, value = lcc.Max()
    print(f"\nhighest local clustering among early papers: node {node} "
          f"(LCC={value:.3f})")

    # --- who were paper 17's most co-cited contacts before mid-history? -----
    mid = t_end // 2
    result = session.at(mid).khop(paper_id, k=1)
    hood = result.value
    ranked = sorted(
        (n for n in hood.nodes() if n != paper_id),
        key=hood.degree,
        reverse=True,
    )
    print(f"\npaper {paper_id}'s neighbors at t={mid}, by degree: "
          f"{ranked[:5]} (fetched via {result.stats.algorithm})")


if __name__ == "__main__":
    main()
