"""Quickstart: build a Temporal Graph Index and run every retrieval primitive.

Run with::

    python examples/quickstart.py
"""

from repro import TGI, TGIConfig
from repro.graph.static import Graph
from repro.workloads.citation import CitationConfig, generate_citation_events


def main() -> None:
    # 1. A historical trace: a growing citation network (every change is an
    #    event with a timestamp).
    events = generate_citation_events(CitationConfig(num_nodes=800, seed=7))
    t_end = events[-1].time
    print(f"history: {len(events)} events over t=[1, {t_end}]")

    # 2. Build the index.  The configuration mirrors the paper's knobs:
    #    timespan length, eventlist size l, micro-partition size ps.
    tgi = TGI(
        TGIConfig(
            events_per_timespan=1500,
            eventlist_size=150,
            micro_partition_size=64,
        )
    )
    tgi.build(events)
    print(
        f"TGI built: {tgi.num_timespans} timespans, "
        f"{tgi.cluster.unique_rows} stored deltas, "
        f"{tgi.cluster.stored_bytes // 1024} KiB"
    )

    # 3. Snapshot retrieval: the whole graph as of any past time point.
    mid = t_end // 2
    g_mid = tgi.get_snapshot(mid, clients=4)
    print(f"\nsnapshot at t={mid}: {g_mid}")
    print(
        f"  fetched {tgi.last_fetch_stats.num_requests} micro-deltas, "
        f"simulated latency {tgi.last_fetch_stats.sim_time_ms:.1f} ms"
    )
    assert g_mid == Graph.replay(events, until=mid)  # always exact

    # 4. Node history: one node's evolution over an interval.
    node = 5
    history = tgi.get_node_history(node, mid, t_end)
    print(f"\nnode {node} history over [{mid}, {t_end}]:")
    print(f"  {history.num_versions} versions, {len(history.events)} events")
    state = history.state_at(t_end)
    if state is not None:
        print(f"  final degree: {len(state.E)}")

    # 5. k-hop neighborhood at a past time point (targeted fetch).
    hood = tgi.get_khop(node, t_end, k=2)
    print(f"\n2-hop neighborhood of {node} at t={t_end}: {hood}")
    print(f"  fetched {tgi.last_fetch_stats.num_requests} micro-deltas")

    # 6. Neighborhood evolution (Algorithm 5).
    evolution = tgi.get_khop_history(node, mid, t_end)
    print(
        f"\n1-hop evolution of {node}: center has "
        f"{evolution.center.num_versions} versions, "
        f"{len(evolution.neighbors)} neighbor histories fetched"
    )


if __name__ == "__main__":
    main()
