"""Quickstart: build a Temporal Graph Index and query it through the
unified `GraphSession` facade.

Run with::

    python examples/quickstart.py
"""

from repro import GraphSession, TGI, TGIConfig
from repro.graph.static import Graph
from repro.workloads.citation import CitationConfig, generate_citation_events


def main() -> None:
    # 1. A historical trace: a growing citation network (every change is an
    #    event with a timestamp).
    events = generate_citation_events(CitationConfig(num_nodes=800, seed=7))
    t_end = events[-1].time
    print(f"history: {len(events)} events over t=[1, {t_end}]")

    # 2. Build the index.  The configuration mirrors the paper's knobs:
    #    timespan length, eventlist size l, micro-partition size ps.
    tgi = TGI(
        TGIConfig(
            events_per_timespan=1500,
            eventlist_size=150,
            micro_partition_size=64,
        )
    )
    tgi.build(events)
    print(
        f"TGI built: {tgi.num_timespans} timespans, "
        f"{tgi.cluster.unique_rows} stored deltas, "
        f"{tgi.cluster.stored_bytes // 1024} KiB"
    )

    # 3. One session owns the cluster, planner, handler and cache; every
    #    query returns its payload plus one consolidated stats object.
    #    (For an index stored with `save_index`/`hgs build`, use
    #    `open_graph(path)` instead — sessions over the same file share a
    #    process-wide delta cache.)
    session = GraphSession.from_index(tgi)

    # 4. Snapshot retrieval: the whole graph as of any past time point.
    mid = t_end // 2
    snap = session.at(mid).snapshot(clients=4)
    print(f"\nsnapshot at t={mid}: {snap.value}")
    print(
        f"  fetched {snap.stats.requests} micro-deltas in "
        f"{snap.stats.rounds} round(s), simulated latency "
        f"{snap.stats.sim_time_ms:.1f} ms "
        f"(predicted {snap.stats.predicted_ms:.1f} ms)"
    )
    assert snap.value == Graph.replay(events, until=mid)  # always exact

    # 5. Node history: one node's evolution over an interval.
    node = 5
    hist = session.between(mid, t_end).node_history(node)
    print(f"\nnode {node} history over [{mid}, {t_end}]:")
    print(f"  {hist.value.num_versions} versions, "
          f"{len(hist.value.events)} events")
    state = hist.value.state_at(t_end)
    if state is not None:
        print(f"  final degree: {len(state.E)}")

    # 6. k-hop neighborhood with cost-based algorithm selection: the
    #    session prices Algorithm 3 (snapshot-first) against Algorithm 4
    #    (targeted micro-delta expansion) and runs the cheaper plan.
    hood = session.at(t_end).khop(node, k=2)
    print(f"\n2-hop neighborhood of {node} at t={t_end}: {hood.value}")
    print(f"  chose {hood.stats.algorithm} "
          f"(candidates: " + ", ".join(
              f"{name}={ms:.1f}ms"
              for name, ms in sorted(hood.stats.candidates.items())
          ) + ")")
    print(f"  predicted {hood.stats.predicted_ms:.1f} ms, "
          f"actual {hood.stats.actual_ms:.1f} ms")

    # 7. Neighborhood evolution (Algorithm 5).
    evolution = session.between(mid, t_end).khop_history(node)
    print(
        f"\n1-hop evolution of {node}: center has "
        f"{evolution.value.center.num_versions} versions, "
        f"{len(evolution.value.neighbors)} neighbor histories fetched"
    )


if __name__ == "__main__":
    main()
